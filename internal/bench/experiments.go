package bench

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"redisgraph/internal/baseline"
	"redisgraph/internal/core"
	"redisgraph/internal/gen"
	"redisgraph/internal/graph"
	"redisgraph/internal/pool"
	"redisgraph/internal/value"
)

// Suite holds the loaded datasets and engine line-ups for all experiments.
type Suite struct {
	Datasets []Dataset
	scale    int
	graphs   map[string]*graph.Graph
	engines  map[string][]baseline.Engine
	w        io.Writer
}

// NewSuite generates and loads the two paper datasets at the given scale.
func NewSuite(scale int, w io.Writer) *Suite {
	s := &Suite{
		scale:   scale,
		graphs:  map[string]*graph.Graph{},
		engines: map[string][]baseline.Engine{},
		w:       w,
	}
	for _, d := range []Dataset{Graph500Dataset(scale), TwitterDataset(scale)} {
		t0 := time.Now()
		g := BuildGraph(d.Name, d.Edges)
		fmt.Fprintf(w, "loaded %-14s %8d nodes %9d edges in %s\n",
			d.Name, d.Edges.NumNodes, d.Edges.NumEdges(), time.Since(t0).Round(time.Millisecond))
		s.Datasets = append(s.Datasets, d)
		s.graphs[d.Name] = g
		s.engines[d.Name] = Systems(g, d.Edges)
	}
	fmt.Fprintln(w)
	return s
}

// Fig1 reproduces Figure 1: average 1-hop response time per system on both
// datasets, with a log-scale text bar chart.
func (s *Suite) Fig1() []Measurement {
	fmt.Fprintln(s.w, "=== E1 / Fig. 1: 1-hop average response time (ms) ===")
	var all []Measurement
	for _, d := range s.Datasets {
		seeds := gen.Seeds(d.Edges, SeedCounts(1), 99)
		fmt.Fprintf(s.w, "\n%s (%d seeds)\n", d.Name, len(seeds))
		var rows []Measurement
		for _, e := range s.engines[d.Name] {
			m := RunKHop(e, d.Name, 1, seeds)
			rows = append(rows, m)
			all = append(all, m)
		}
		s.checkAgreement(rows)
		maxMean := 0.0
		for _, m := range rows {
			if m.MeanMS > maxMean {
				maxMean = m.MeanMS
			}
		}
		for _, m := range rows {
			fmt.Fprintf(s.w, "  %-14s %10.3f ms  %s\n", m.System, m.MeanMS, logBar(m.MeanMS, maxMean))
		}
	}
	fmt.Fprintln(s.w)
	return all
}

// KHopTable reproduces the Section III text results: k ∈ {1,2,3,6} per
// system and dataset, with the paper's seed counts, and prints the E5
// speedup summary.
func (s *Suite) KHopTable(ks []int) []Measurement {
	if len(ks) == 0 {
		ks = []int{1, 2, 3, 6}
	}
	fmt.Fprintln(s.w, "=== E2: k-hop neighborhood count, mean response time (ms) ===")
	var all []Measurement
	for _, d := range s.Datasets {
		fmt.Fprintf(s.w, "\n%s\n", d.Name)
		fmt.Fprintf(s.w, "  %-14s", "system")
		for _, k := range ks {
			fmt.Fprintf(s.w, " %12s", fmt.Sprintf("k=%d", k))
		}
		fmt.Fprintln(s.w)
		perSystem := map[string][]Measurement{}
		for _, e := range s.engines[d.Name] {
			fmt.Fprintf(s.w, "  %-14s", e.Name())
			for _, k := range ks {
				seeds := gen.Seeds(d.Edges, SeedCounts(k), int64(1000+k))
				m := RunKHop(e, d.Name, k, seeds)
				perSystem[e.Name()] = append(perSystem[e.Name()], m)
				all = append(all, m)
				fmt.Fprintf(s.w, " %12.3f", m.MeanMS)
			}
			fmt.Fprintln(s.w)
		}
		// Cross-engine agreement per k.
		for ki := range ks {
			var rows []Measurement
			for _, e := range s.engines[d.Name] {
				rows = append(rows, perSystem[e.Name()][ki])
			}
			s.checkAgreement(rows)
		}
		s.speedupSummary(d.Name, perSystem, ks)
	}
	fmt.Fprintln(s.w)
	return all
}

// speedupSummary prints the paper's Conclusions comparison: RedisGraph vs
// each competitor (paper: 36×–15,000× vs the object/remote stores, 2× and
// 0.8× vs TigerGraph).
func (s *Suite) speedupSummary(dataset string, perSystem map[string][]Measurement, ks []int) {
	ref, ok := perSystem["RedisGraph"]
	if !ok {
		return
	}
	fmt.Fprintf(s.w, "  -- E5 speedups vs RedisGraph (>1 means RedisGraph faster) --\n")
	names := make([]string, 0, len(perSystem))
	for n := range perSystem {
		if n != "RedisGraph" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(s.w, "  %-14s", n)
		for ki := range ks {
			fmt.Fprintf(s.w, " %11.1fx", perSystem[n][ki].MeanMS/ref[ki].MeanMS)
		}
		fmt.Fprintln(s.w)
	}
}

// checkAgreement verifies every engine returned identical k-hop counts —
// the harness's correctness cross-check.
func (s *Suite) checkAgreement(rows []Measurement) {
	if len(rows) < 2 {
		return
	}
	ref := rows[0]
	for _, m := range rows[1:] {
		for i := range ref.Counts {
			if m.Counts[i] != ref.Counts[i] {
				panic(fmt.Sprintf("bench: %s and %s disagree on seed %d (k=%d): %d vs %d",
					ref.System, m.System, i, ref.K, ref.Counts[i], m.Counts[i]))
			}
		}
	}
}

// ThroughputResult is one concurrency point of experiment E3.
type ThroughputResult struct {
	Model       string
	Threads     int
	Clients     int
	QueriesPerS float64
	MeanLatMS   float64
}

// Throughput reproduces E3 — the architecture claim: a pool of single-core
// queries (RedisGraph) scales with concurrent clients, while an
// all-cores-per-query engine (TigerGraph model) serialises them.
func (s *Suite) Throughput(queries int) []ThroughputResult {
	fmt.Fprintln(s.w, "=== E3: concurrent 1-hop throughput (queries/sec) ===")
	d := s.Datasets[0]
	g := s.graphs[d.Name]
	seeds := gen.Seeds(d.Edges, 64, 5)
	var out []ThroughputResult

	run := func(model string, threads int, exec func(seed int)) {
		for _, clients := range []int{1, 2, 4, 8} {
			var wg sync.WaitGroup
			per := queries / clients
			t0 := time.Now()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for q := 0; q < per; q++ {
						exec(seeds[(c*per+q)%len(seeds)])
					}
				}(c)
			}
			wg.Wait()
			el := time.Since(t0)
			r := ThroughputResult{
				Model: model, Threads: threads, Clients: clients,
				QueriesPerS: float64(per*clients) / el.Seconds(),
				MeanLatMS:   float64(el.Milliseconds()) / float64(per*clients),
			}
			out = append(out, r)
			fmt.Fprintf(s.w, "  %-28s clients=%d  %10.0f q/s\n", model, clients, r.QueriesPerS)
		}
	}

	// RedisGraph model: threadpool of single-core workers.
	p := pool.New(runtime.GOMAXPROCS(0))
	defer p.Close()
	rg := NewRedisGraphEngine(g, 1)
	run("RedisGraph (pool, 1 core/q)", p.Size(), func(seed int) {
		f, err := p.Submit(func() (any, error) { return rg.KHopCount(seed, 1), nil })
		if err != nil {
			panic(err)
		}
		if _, err := f.Wait(); err != nil {
			panic(err)
		}
	})

	// TigerGraph model: each query grabs every core; queries serialise.
	var serial sync.Mutex
	tg := baseline.NewParallelAdjList(d.Edges.NumNodes, d.Edges.Src, d.Edges.Dst, runtime.GOMAXPROCS(0))
	run("TigerGraph (all cores/query)", runtime.GOMAXPROCS(0), func(seed int) {
		serial.Lock()
		tg.KHopCount(seed, 1)
		serial.Unlock()
	})
	fmt.Fprintln(s.w)
	return out
}

// RobustResult is experiment E4's outcome.
type RobustResult struct {
	Dataset   string
	Seeds     int
	Timeouts  int
	OOMs      int
	MaxHeapMB float64
	MeanMS    float64
}

// Robustness reproduces E4: every 6-hop query must finish without timeout
// or memory blow-up (paper Conclusions: "none of the queries timed out...
// none created out of memory exceptions").
func (s *Suite) Robustness(timeout time.Duration) []RobustResult {
	fmt.Fprintln(s.w, "=== E4: 6-hop robustness (timeouts / memory) ===")
	var out []RobustResult
	for _, d := range s.Datasets {
		g := s.graphs[d.Name]
		eng := NewRedisGraphEngine(g, 1)
		seeds := gen.Seeds(d.Edges, SeedCounts(6), 2024)
		res := RobustResult{Dataset: d.Name, Seeds: len(seeds)}
		var total time.Duration
		for _, seed := range seeds {
			var ms runtime.MemStats
			t0 := time.Now()
			func() {
				defer func() {
					if r := recover(); r != nil {
						res.OOMs++ // any panic counts against robustness
					}
				}()
				eng.KHopCount(seed, 6)
			}()
			el := time.Since(t0)
			total += el
			if timeout > 0 && el > timeout {
				res.Timeouts++
			}
			runtime.ReadMemStats(&ms)
			heap := float64(ms.HeapAlloc) / (1 << 20)
			if heap > res.MaxHeapMB {
				res.MaxHeapMB = heap
			}
		}
		res.MeanMS = float64(total.Milliseconds()) / float64(len(seeds))
		fmt.Fprintf(s.w, "  %-14s seeds=%d timeouts=%d ooms=%d maxheap=%.0fMB mean=%.1fms\n",
			d.Name, res.Seeds, res.Timeouts, res.OOMs, res.MaxHeapMB, res.MeanMS)
		out = append(out, res)
	}
	fmt.Fprintln(s.w)
	return out
}

// TraverseBatchResult is one dataset's outcome of the traverse-batch
// experiment: the same traversal over every source node, evaluated
// per-record (batch 1) versus as fused frontier matrices.
type TraverseBatchResult struct {
	Dataset     string  `json:"dataset"`
	Sources     int     `json:"sources"`
	Rows        int64   `json:"rows"`
	Batch       int     `json:"batch"`
	PerRecordMS float64 `json:"per_record_ms"`
	BatchedMS   float64 `json:"batched_ms"`
	Speedup     float64 `json:"speedup"`
}

// TraverseBatch measures the batched-traversal tentpole: a one-hop MATCH
// over every source node, executed through the full Cypher stack, with the
// traversal operation's frontier batch forced to 1 (the historic per-record
// path) and to the given batch size. Both runs must return the same count —
// the experiment doubles as an end-to-end equivalence check.
func (s *Suite) TraverseBatch(batch int) []TraverseBatchResult {
	fmt.Fprintf(s.w, "=== E6: batched algebraic traversal, one-hop over all sources (batch=%d) ===\n", batch)
	const query = `MATCH (a:Node)-[:F]->(b:Node) RETURN count(b)`
	var out []TraverseBatchResult
	for _, d := range s.Datasets {
		g := s.graphs[d.Name]
		once := func(bs int) (float64, int64) {
			// Start from a collected heap so each rep pays for its own
			// garbage — on small machines GC timing otherwise dominates
			// the comparison.
			runtime.GC()
			t0 := time.Now()
			rs, err := core.ROQuery(g, query, nil, core.Config{OpThreads: 1, TraverseBatch: bs})
			if err != nil {
				panic(fmt.Sprintf("bench: traverse-batch: %v", err))
			}
			return float64(time.Since(t0).Nanoseconds()) / 1e6, rs.Rows[0][0].Int()
		}
		// Interleave the two modes so time-varying machine noise biases
		// neither; report the median rep of each (rep 0 warms caches).
		var perReps, batchReps []float64
		var rowsPer, rowsBatch int64
		for rep := 0; rep < 6; rep++ {
			var el float64
			el, rowsPer = once(1)
			if rep > 0 {
				perReps = append(perReps, el)
			}
			el, rowsBatch = once(batch)
			if rep > 0 {
				batchReps = append(batchReps, el)
			}
		}
		sort.Float64s(perReps)
		sort.Float64s(batchReps)
		perMS := perReps[len(perReps)/2]
		batchMS := batchReps[len(batchReps)/2]
		if rowsPer != rowsBatch {
			panic(fmt.Sprintf("bench: traverse-batch disagreement on %s: per-record %d vs batched %d",
				d.Name, rowsPer, rowsBatch))
		}
		r := TraverseBatchResult{
			Dataset: d.Name, Sources: d.Edges.NumNodes, Rows: rowsPer, Batch: batch,
			PerRecordMS: perMS, BatchedMS: batchMS, Speedup: perMS / batchMS,
		}
		out = append(out, r)
		fmt.Fprintf(s.w, "  %-14s sources=%d rows=%d  per-record %8.2f ms  batched(%d) %8.2f ms  %5.2fx\n",
			r.Dataset, r.Sources, r.Rows, r.PerRecordMS, batch, r.BatchedMS, r.Speedup)
	}
	fmt.Fprintln(s.w)
	return out
}

// PipelineBatchResult is one (dataset, workload) cell of the batch-pipeline
// experiment: a filter-heavy scan+traverse+aggregate query executed by the
// tuple-at-a-time engine (batch 1, no pushdown), the batch-at-a-time engine
// without pushdown, and the full engine with algebraic predicate pushdown.
type PipelineBatchResult struct {
	Dataset      string  `json:"dataset"`
	Workload     string  `json:"workload"`
	Query        string  `json:"query"`
	Rows         int     `json:"rows"`
	Batch        int     `json:"batch"`
	ScalarMS     float64 `json:"scalar_ms"`     // batch 1, residual filters
	BatchedMS    float64 `json:"batched_ms"`    // batch N, residual filters
	PushdownMS   float64 `json:"pushdown_ms"`   // batch N, pushed filters
	SpeedupBatch float64 `json:"speedup_batch"` // scalar / batched
	SpeedupTotal float64 `json:"speedup_total"` // scalar / batched+pushdown
}

// PipelineBatch measures the batch-at-a-time executor end-to-end: unlike the
// traverse-batch experiment (which isolates the fused MxM), these workloads
// push whole batches through scan → traverse → filter → aggregate, so the
// speedup reflects the full pipeline plus predicate pushdown. Every engine
// variant must return identical rows — the experiment doubles as a
// differential check.
func (s *Suite) PipelineBatch(batch int) []PipelineBatchResult {
	fmt.Fprintf(s.w, "=== E8: batch-at-a-time pipeline with predicate pushdown (batch=%d) ===\n", batch)
	var out []PipelineBatchResult
	for _, d := range s.Datasets {
		g := s.graphs[d.Name]
		n := d.Edges.NumNodes
		workloads := []struct {
			name  string
			query string
		}{
			// Residual inequality filters: not pushable, so this cell
			// isolates the batched scan/filter/aggregate pipeline.
			{"filter-agg", fmt.Sprintf(
				`MATCH (a:Node)-[:F]->(b:Node) WHERE a.uid < %d AND b.uid >= %d RETURN min(b.uid), max(b.uid), count(b)`,
				n/2, n/4)},
			// Record-free equality on the traversal destination: pushable
			// into an index-seeded frontier mask, so the pushdown cell skips
			// materialising all the non-matching (a, b) rows entirely.
			{"pushdown-eq", fmt.Sprintf(
				`MATCH (a:Node)-[:F]->(b:Node) WHERE b.uid = %d RETURN a.uid, count(b)`, n/3)},
		}
		for _, wl := range workloads {
			once := func(cfg core.Config) (float64, []string) {
				runtime.GC()
				t0 := time.Now()
				rs, err := core.ROQuery(g, wl.query, nil, cfg)
				if err != nil {
					panic(fmt.Sprintf("bench: pipeline-batch: %v", err))
				}
				rows := make([]string, len(rs.Rows))
				for i, row := range rs.Rows {
					rows[i] = fmt.Sprint(row)
				}
				sort.Strings(rows)
				return float64(time.Since(t0).Nanoseconds()) / 1e6, rows
			}
			cfgs := []core.Config{
				{OpThreads: 1, TraverseBatch: 1, NoPushdown: true},
				{OpThreads: 1, TraverseBatch: batch, NoPushdown: true},
				{OpThreads: 1, TraverseBatch: batch},
			}
			// Interleave the three variants so time-varying machine noise
			// biases none; keep the median of the post-warmup reps.
			reps := make([][]float64, len(cfgs))
			var ref []string
			for rep := 0; rep < 6; rep++ {
				for ci, cfg := range cfgs {
					el, rows := once(cfg)
					if rep > 0 {
						reps[ci] = append(reps[ci], el)
					}
					if ref == nil {
						ref = rows
					} else if strings.Join(rows, ";") != strings.Join(ref, ";") {
						panic(fmt.Sprintf("bench: pipeline-batch disagreement on %s/%s (cfg %d)",
							d.Name, wl.name, ci))
					}
				}
			}
			med := func(xs []float64) float64 {
				sort.Float64s(xs)
				return xs[len(xs)/2]
			}
			r := PipelineBatchResult{
				Dataset: d.Name, Workload: wl.name, Query: wl.query,
				Rows: len(ref), Batch: batch,
				ScalarMS: med(reps[0]), BatchedMS: med(reps[1]), PushdownMS: med(reps[2]),
			}
			r.SpeedupBatch = r.ScalarMS / r.BatchedMS
			r.SpeedupTotal = r.ScalarMS / r.PushdownMS
			out = append(out, r)
			fmt.Fprintf(s.w, "  %-14s %-12s scalar %8.2f ms  batched(%d) %8.2f ms (%4.2fx)  +pushdown %8.2f ms (%4.2fx)\n",
				r.Dataset, r.Workload, r.ScalarMS, batch, r.BatchedMS, r.SpeedupBatch, r.PushdownMS, r.SpeedupTotal)
		}
	}
	fmt.Fprintln(s.w)
	return out
}

// PlanOrderResult is one workload of the cost-based-planner experiment: an
// order-sensitive query executed with the cost planner against the
// NoCostPlanner textual baseline.
type PlanOrderResult struct {
	Workload  string  `json:"workload"`
	Query     string  `json:"query"`
	Rows      int     `json:"rows"`
	TextualMS float64 `json:"textual_ms"`
	CostMS    float64 `json:"cost_ms"`
	Speedup   float64 `json:"speedup"`
}

// PlanOrder measures the cost-based query planner (E9) on a label-skewed
// graph the textual planner handles badly: 2^scale :Big nodes densely
// connected by :S, 16 :Rare nodes touched by a handful of :R edges. Every
// workload is written so textual order starts from the dense end; the cost
// planner must pick the selective entry point and traverse the transposed
// matrices instead. Both planners must return identical results — the
// experiment doubles as a differential check.
func (s *Suite) PlanOrder() []PlanOrderResult {
	fmt.Fprintf(s.w, "=== E9: cost-based planner, order-sensitive queries (scale=%d) ===\n", s.scale)
	nBig := 1 << s.scale
	const nRare = 16
	g := graph.New("plan-order")
	g.Lock()
	bigs := make([]uint64, nBig)
	for i := 0; i < nBig; i++ {
		bigs[i] = g.CreateNode([]string{"Big"}, map[string]value.Value{
			"uid": value.NewInt(int64(i)),
		}).ID
	}
	rares := make([]uint64, nRare)
	for i := 0; i < nRare; i++ {
		rares[i] = g.CreateNode([]string{"Rare"}, map[string]value.Value{
			"uid": value.NewInt(int64(i)),
		}).ID
	}
	mustEdge := func(typ string, src, dst uint64) {
		if _, err := g.CreateEdge(typ, src, dst, nil); err != nil {
			panic(fmt.Sprintf("bench: plan-order: %v", err))
		}
	}
	// Dense relation among the Big nodes: 4 deterministic pseudo-random
	// successors each.
	for i, b := range bigs {
		for k := 0; k < 4; k++ {
			mustEdge("S", b, bigs[(i*2654435761+k*40503+1)%nBig])
		}
	}
	// Sparse relation from a few Big nodes into the Rare ones.
	for i := 0; i < 8*nRare; i++ {
		mustEdge("R", bigs[(i*7919)%nBig], rares[i%nRare])
	}
	g.Sync()
	g.Unlock()

	workloads := []struct {
		name  string
		query string
	}{
		// Entry-point choice: the pattern is written dense-end first; the
		// cost planner must start from the 16-node :Rare label and walk Rᵀ.
		{"selective-entry", `MATCH (a:Big)-[:R]->(b:Rare) RETURN count(a)`},
		// Hop ordering across a chain: textual order expands the dense :S
		// relation over every :Big node before filtering through :R.
		{"hop-order", `MATCH (a:Big)-[:S]->(m:Big)-[:R]->(b:Rare) RETURN count(*)`},
	}
	var out []PlanOrderResult
	for _, wl := range workloads {
		once := func(cfg core.Config) (float64, string) {
			runtime.GC()
			t0 := time.Now()
			rs, err := core.ROQuery(g, wl.query, nil, cfg)
			if err != nil {
				panic(fmt.Sprintf("bench: plan-order: %v", err))
			}
			rows := make([]string, len(rs.Rows))
			for i, row := range rs.Rows {
				rows[i] = fmt.Sprint(row)
			}
			sort.Strings(rows)
			return float64(time.Since(t0).Nanoseconds()) / 1e6, strings.Join(rows, ";")
		}
		// Interleave the two planners so time-varying machine noise biases
		// neither; keep the median of the post-warmup reps.
		var costReps, textReps []float64
		var ref string
		for rep := 0; rep < 6; rep++ {
			el, rows := once(core.Config{OpThreads: 1})
			if rep > 0 {
				costReps = append(costReps, el)
			}
			if ref == "" {
				ref = rows
			} else if rows != ref {
				panic(fmt.Sprintf("bench: plan-order disagreement on %s (cost)", wl.name))
			}
			el, rows = once(core.Config{OpThreads: 1, NoCostPlanner: true})
			if rep > 0 {
				textReps = append(textReps, el)
			}
			if rows != ref {
				panic(fmt.Sprintf("bench: plan-order disagreement on %s (textual)", wl.name))
			}
		}
		sort.Float64s(costReps)
		sort.Float64s(textReps)
		r := PlanOrderResult{
			Workload: wl.name, Query: wl.query,
			Rows:      strings.Count(ref, ";") + 1,
			TextualMS: textReps[len(textReps)/2],
			CostMS:    costReps[len(costReps)/2],
		}
		r.Speedup = r.TextualMS / r.CostMS
		out = append(out, r)
		fmt.Fprintf(s.w, "  %-16s textual %10.2f ms  cost-based %8.2f ms  %6.2fx\n",
			r.Workload, r.TextualMS, r.CostMS, r.Speedup)
	}
	fmt.Fprintln(s.w)
	return out
}

// JoinOrderResult is one workload cell of the second-generation join
// planner experiment (E13): the same query with the join planner on
// (hash joins for WHERE-bridged components, DP join-order search) and off
// (greedy hop ordering, cartesian rescans).
type JoinOrderResult struct {
	Workload string  `json:"workload"`
	Query    string  `json:"query"`
	Rows     int     `json:"rows"`
	GreedyMS float64 `json:"greedy_ms"`
	JoinedMS float64 `json:"joined_ms"`
	Speedup  float64 `json:"speedup"`
}

// JoinOrder measures the planner-v2 wins on the two shapes it targets.
//
// hash-bridge: two traversal components connected only by a WHERE property
// equality. Without the join planner the second component rescans once per
// outer row (a cartesian product filtered after the fact); the hash join
// builds the smaller side once and probes it per row.
//
// dp-cycle: a 4-vertex diamond cycle built as a greedy trap. Both planners
// enter the tiny :X label, but greedy's per-step metric picks the
// locally-cheaper :V hop (fanout ~3/4·fan) and rides the dense :W relation
// to an exploded frontier, while the slightly pricier :P hop unlocks the
// 16-edge collapsing :Q relation, shrinking the frontier to a handful of
// rows before the dense edge is ever expanded. Only the DP search — which
// scores whole orders — finds that; it adopts its order only because the
// simulated total undercuts the simulated greedy total, so this workload
// also exercises the adoption gate end to end.
//
// Both planner modes must return identical results — the experiment doubles
// as a differential check, including the textual planner as a third voice.
func (s *Suite) JoinOrder() []JoinOrderResult {
	fmt.Fprintf(s.w, "=== E13: join planner, bridged components and DP ordering (scale=%d) ===\n", s.scale)
	// Component size for the bridge workload and the fanout for the DP trap
	// both derive from the scale so the smoke configuration stays quick.
	n := 1 << (s.scale/2 + 3)
	fan := 1 << (s.scale - 5)
	if fan < 2 {
		fan = 2
	}
	if fan > 512 {
		fan = 512
	}
	const nKeys = 64
	const nX = 16
	nY := nX * fan
	nZ := nY / 32
	if nZ < nX {
		nZ = nX
	}
	g := graph.New("join-order")
	g.Lock()
	mustEdge := func(typ string, src, dst uint64) {
		if _, err := g.CreateEdge(typ, src, dst, nil); err != nil {
			panic(fmt.Sprintf("bench: join-order: %v", err))
		}
	}
	// hash-bridge fixture: (:L)-[:E1]->(:M {k}) and (:F {k})-[:E2]->(:T).
	for i := 0; i < n; i++ {
		l := g.CreateNode([]string{"L"}, map[string]value.Value{"uid": value.NewInt(int64(i))})
		m := g.CreateNode([]string{"M"}, map[string]value.Value{"k": value.NewInt(int64(i % nKeys))})
		mustEdge("E1", l.ID, m.ID)
		f := g.CreateNode([]string{"F"}, map[string]value.Value{"k": value.NewInt(int64(i % nKeys))})
		t := g.CreateNode([]string{"T"}, map[string]value.Value{"uid": value.NewInt(int64(i))})
		mustEdge("E2", f.ID, t.ID)
	}
	// dp-cycle fixture: the diamond a:X -P-> b:Y -Q-> d:Z and
	// a -V-> c:Y2 -W-> d. P fans out `fan` ways, V slightly less (the bait),
	// Q has only nX edges (the collapse P unlocks), W is dense.
	fan2 := fan * 3 / 4
	xs := make([]uint64, nX)
	for i := range xs {
		xs[i] = g.CreateNode([]string{"X"}, nil).ID
	}
	ys := make([]uint64, nY)
	y2s := make([]uint64, nY)
	for i := 0; i < nY; i++ {
		ys[i] = g.CreateNode([]string{"Y"}, nil).ID
		y2s[i] = g.CreateNode([]string{"Y2"}, nil).ID
	}
	zs := make([]uint64, nZ)
	for i := range zs {
		zs[i] = g.CreateNode([]string{"Z"}, nil).ID
	}
	for i := 0; i < nY; i++ {
		mustEdge("P", xs[i/fan], ys[i]) // each :X fans out `fan` ways
	}
	for i := 0; i < nX; i++ {
		for k := 0; k < fan2; k++ {
			mustEdge("V", xs[i], y2s[(i*fan2+k*2654435761+1)%nY])
		}
	}
	for i := 0; i < nX; i++ {
		mustEdge("Q", ys[(i*(nY/nX))%nY], zs[i%nZ]) // 16 collapsing edges
	}
	for i := 0; i < nY; i++ {
		for k := 0; k < 4; k++ {
			mustEdge("W", y2s[i], zs[(i*7+k*131+1)%nZ]) // dense into :Z
		}
	}
	g.Sync()
	g.Unlock()

	workloads := []struct {
		name  string
		query string
	}{
		{"hash-bridge", `MATCH (a:L)-[:E1]->(b:M), (c:F)-[:E2]->(d:T) WHERE b.k = c.k RETURN count(*)`},
		{"dp-cycle", `MATCH (a:X)-[:P]->(b:Y)-[:Q]->(d:Z), (a)-[:V]->(c:Y2)-[:W]->(d) RETURN count(*)`},
	}
	var out []JoinOrderResult
	for _, wl := range workloads {
		once := func(cfg core.Config) (float64, string) {
			runtime.GC()
			t0 := time.Now()
			rs, err := core.ROQuery(g, wl.query, nil, cfg)
			if err != nil {
				panic(fmt.Sprintf("bench: join-order: %v", err))
			}
			rows := make([]string, len(rs.Rows))
			for i, row := range rs.Rows {
				rows[i] = fmt.Sprint(row)
			}
			sort.Strings(rows)
			return float64(time.Since(t0).Nanoseconds()) / 1e6, strings.Join(rows, ";")
		}
		// Interleave the two planner modes so time-varying machine noise
		// biases neither; keep the median of the post-warmup reps.
		var joinReps, greedyReps []float64
		var ref string
		for rep := 0; rep < 6; rep++ {
			el, rows := once(core.Config{OpThreads: 1})
			if rep > 0 {
				joinReps = append(joinReps, el)
			}
			if ref == "" {
				ref = rows
			} else if rows != ref {
				panic(fmt.Sprintf("bench: join-order disagreement on %s (joined)", wl.name))
			}
			el, rows = once(core.Config{OpThreads: 1, NoJoinPlanner: true})
			if rep > 0 {
				greedyReps = append(greedyReps, el)
			}
			if rows != ref {
				panic(fmt.Sprintf("bench: join-order disagreement on %s (greedy)", wl.name))
			}
		}
		if _, rows := once(core.Config{OpThreads: 1, NoCostPlanner: true}); rows != ref {
			panic(fmt.Sprintf("bench: join-order disagreement on %s (textual)", wl.name))
		}
		sort.Float64s(joinReps)
		sort.Float64s(greedyReps)
		r := JoinOrderResult{
			Workload: wl.name, Query: wl.query,
			Rows:     strings.Count(ref, ";") + 1,
			GreedyMS: greedyReps[len(greedyReps)/2],
			JoinedMS: joinReps[len(joinReps)/2],
		}
		r.Speedup = r.GreedyMS / r.JoinedMS
		out = append(out, r)
		fmt.Fprintf(s.w, "  %-12s greedy %10.2f ms  joined %8.2f ms  %6.2fx\n",
			r.Workload, r.GreedyMS, r.JoinedMS, r.Speedup)
	}
	fmt.Fprintln(s.w)
	return out
}

// KernelSelectResult is one workload cell of the direction-optimizing
// kernel experiment (E10): the same queries under forced push, forced pull
// and density-adaptive auto traversal kernels.
type KernelSelectResult struct {
	Dataset    string  `json:"dataset"`
	Workload   string  `json:"workload"`
	Query      string  `json:"query"`
	Queries    int     `json:"queries"`
	PushQPS    float64 `json:"push_qps"`
	PullQPS    float64 `json:"pull_qps"`
	AutoQPS    float64 `json:"auto_qps"`
	AutoVsPush float64 `json:"auto_vs_push"` // auto_qps / push_qps
	AutoVsBest float64 `json:"auto_vs_best"` // auto_qps / max(push_qps, pull_qps)
}

// MisEstimate is one order-of-magnitude planner mis-estimate observed while
// profiling a bench workload: the estimated-vs-actual feedback loop over
// PROFILE's `est:` versus `Records produced:` figures. Warn-only — surfaced
// in the JSON artifact and on stdout, never failing the run.
type MisEstimate struct {
	Dataset  string  `json:"dataset"`
	Workload string  `json:"workload"`
	Op       string  `json:"op"`
	Est      float64 `json:"est"`
	Actual   int64   `json:"actual"`
	Factor   float64 `json:"factor"`
}

// KernelSelectReport bundles the experiment cells with the est-vs-actual
// feedback rows for the BENCH_kernel.json artifact.
type KernelSelectReport struct {
	Results      []KernelSelectResult `json:"results"`
	MisEstimates []MisEstimate        `json:"mis_estimates"`
}

// profileEstRE extracts the cardinality estimate and actual record count
// from one GRAPH.PROFILE line.
var profileEstRE = regexp.MustCompile(`est: ([^ ]+) rows \| Records produced: ([0-9]+)`)

// estFeedback profiles one query and flags operations whose estimate misses
// the produced record count by an order of magnitude in either direction
// (ignoring disagreements where both figures are small).
func estFeedback(g *graph.Graph, dataset, workload, query string) []MisEstimate {
	lines, err := core.Profile(g, query, nil, core.Config{OpThreads: 1})
	if err != nil {
		panic(fmt.Sprintf("bench: est-feedback: %v", err))
	}
	var out []MisEstimate
	for _, line := range lines {
		m := profileEstRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		est := 0.5 // "<1" prints for sub-row estimates
		if m[1] != "<1" {
			if v, err := strconv.ParseFloat(m[1], 64); err == nil {
				est = v
			}
		}
		actual, _ := strconv.ParseInt(m[2], 10, 64)
		hi, lo := est, float64(actual)
		if lo > hi {
			hi, lo = lo, hi
		}
		if lo < 0.5 {
			lo = 0.5
		}
		factor := hi / lo
		if factor < 10 || hi < 10 {
			continue
		}
		op := strings.TrimSpace(line)
		if i := strings.Index(op, " | "); i > 0 {
			op = op[:i]
		}
		out = append(out, MisEstimate{Dataset: dataset, Workload: workload, Op: op,
			Est: est, Actual: actual, Factor: factor})
	}
	return out
}

// hubSeeds returns the k highest-out-degree vertices of an edge list — the
// dense-frontier seeds of the kernel-selection experiment.
func hubSeeds(e *gen.EdgeList, k int) []int {
	deg := make([]int, e.NumNodes)
	for _, s := range e.Src {
		deg[s]++
	}
	order := make([]int, e.NumNodes)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return deg[order[a]] > deg[order[b]] })
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}

// KernelSelect measures direction-optimizing traversal (E10): workloads
// spanning frontier densities — multi-hop expansion from high-degree seeds
// (frontiers densify hop over hop), a cycle-closing expand-into over every
// edge (the tiny-candidate-set pull case) and sparse single-seed one-hops
// (where push must keep winning) — each run under TRAVERSE_KERNEL push,
// pull and auto. Every variant must return identical rows (a differential
// check), auto must track the better direction everywhere, and the same
// queries feed the estimated-vs-actual PROFILE feedback.
func (s *Suite) KernelSelect() KernelSelectReport {
	fmt.Fprintln(s.w, "=== E10: direction-optimizing traversal kernels (push vs pull vs auto) ===")
	var report KernelSelectReport
	for _, d := range s.Datasets {
		g := s.graphs[d.Name]
		hubs := hubSeeds(d.Edges, 16)
		sparse := gen.Seeds(d.Edges, 256, 31)
		workloads := []struct {
			name    string
			display string // representative query for the report / feedback
			queries []string
		}{
			{
				name:    "khop3-hubs",
				display: fmt.Sprintf(`MATCH (s:Node {uid: %d})-[:F*1..3]->(n) RETURN count(n)`, hubs[0]),
				queries: func() []string {
					qs := make([]string, len(hubs))
					for i, h := range hubs {
						qs[i] = fmt.Sprintf(`MATCH (s:Node {uid: %d})-[:F*1..3]->(n) RETURN count(n)`, h)
					}
					return qs
				}(),
			},
			{
				name:    "expand-into-cycle",
				display: `MATCH (a:Node)-[:F]->(b:Node)-[:F]->(a) RETURN count(*)`,
				queries: []string{`MATCH (a:Node)-[:F]->(b:Node)-[:F]->(a) RETURN count(*)`},
			},
			{
				name:    "sparse-1hop",
				display: fmt.Sprintf(`MATCH (s:Node {uid: %d})-[:F]->(n) RETURN count(n)`, sparse[0]),
				queries: func() []string {
					qs := make([]string, len(sparse))
					for i, seed := range sparse {
						qs[i] = fmt.Sprintf(`MATCH (s:Node {uid: %d})-[:F]->(n) RETURN count(n)`, seed)
					}
					return qs
				}(),
			},
		}
		for _, wl := range workloads {
			once := func(kernel string) (float64, string) {
				runtime.GC()
				var rows []string
				t0 := time.Now()
				for _, q := range wl.queries {
					rs, err := core.ROQuery(g, q, nil, core.Config{OpThreads: 1, TraverseKernel: kernel})
					if err != nil {
						panic(fmt.Sprintf("bench: kernel-select: %v", err))
					}
					for _, row := range rs.Rows {
						rows = append(rows, fmt.Sprint(row))
					}
				}
				el := time.Since(t0)
				sort.Strings(rows)
				return float64(len(wl.queries)) / el.Seconds(), strings.Join(rows, ";")
			}
			kernels := []string{"push", "pull", "auto"}
			reps := make(map[string][]float64, len(kernels))
			var ref string
			// Interleave the three kernels so time-varying machine noise
			// biases none; keep the median of the post-warmup reps.
			for rep := 0; rep < 6; rep++ {
				for _, k := range kernels {
					qps, rows := once(k)
					if rep > 0 {
						reps[k] = append(reps[k], qps)
					}
					if ref == "" {
						ref = rows
					} else if rows != ref {
						panic(fmt.Sprintf("bench: kernel-select disagreement on %s/%s (%s)",
							d.Name, wl.name, k))
					}
				}
			}
			med := func(k string) float64 {
				xs := reps[k]
				sort.Float64s(xs)
				return xs[len(xs)/2]
			}
			r := KernelSelectResult{
				Dataset: d.Name, Workload: wl.name, Query: wl.display,
				Queries: len(wl.queries),
				PushQPS: med("push"), PullQPS: med("pull"), AutoQPS: med("auto"),
			}
			r.AutoVsPush = r.AutoQPS / r.PushQPS
			r.AutoVsBest = r.AutoQPS / math.Max(r.PushQPS, r.PullQPS)
			report.Results = append(report.Results, r)
			fmt.Fprintf(s.w, "  %-14s %-18s push %9.1f q/s  pull %9.1f q/s  auto %9.1f q/s  (%.2fx vs push, %.2fx vs best)\n",
				r.Dataset, r.Workload, r.PushQPS, r.PullQPS, r.AutoQPS, r.AutoVsPush, r.AutoVsBest)

			report.MisEstimates = append(report.MisEstimates,
				estFeedback(g, d.Name, wl.name, wl.display)...)
		}
	}
	for _, me := range report.MisEstimates {
		fmt.Fprintf(s.w, "  est-feedback WARN %s/%s %s: est %.3g vs actual %d (%.0fx off)\n",
			me.Dataset, me.Workload, me.Op, me.Est, me.Actual, me.Factor)
	}
	fmt.Fprintln(s.w)
	return report
}

// ParallelScalingResult is one (workload, thread-count) cell of the
// intra-query parallel-scaling experiment: the same query under
// MAX_QUERY_THREADS 1, 2, 4 and 8. GoMaxProcs records the host's actual
// core budget — on a single-core host the speedups stay near 1 however
// many workers the morsel pool runs, and the artifact must say so.
type ParallelScalingResult struct {
	Dataset    string  `json:"dataset"`
	Workload   string  `json:"workload"`
	Query      string  `json:"query"`
	Queries    int     `json:"queries"`
	Threads    int     `json:"threads"`
	GoMaxProcs int     `json:"gomaxprocs"`
	QPS        float64 `json:"qps"`
	MeanMS     float64 `json:"mean_ms"`
	Speedup    float64 `json:"speedup_vs_1"`
}

// ParallelScaling measures morsel-driven intra-query parallelism end to
// end: k-hop expansion from high-degree seeds (morselised kernels behind
// an index entry), a filter-heavy scan+aggregate (parallel pipeline
// segments into the aggregation merge) and ORDER BY + LIMIT (segments into
// the top-N merge), each at thread budgets 1, 2, 4 and 8. Every thread
// count must return identical rows — the experiment doubles as a
// differential check. Speedups are relative to the single-thread run of
// the same build, so threads=1 also guards against regression of the
// serial path.
func (s *Suite) ParallelScaling() []ParallelScalingResult {
	maxprocs := runtime.GOMAXPROCS(0)
	fmt.Fprintf(s.w, "=== E11: morsel-driven intra-query parallel scaling (GOMAXPROCS=%d) ===\n", maxprocs)
	d := s.Datasets[0]
	g := s.graphs[d.Name]
	n := d.Edges.NumNodes
	hubs := hubSeeds(d.Edges, 8)
	workloads := []struct {
		name    string
		display string
		queries []string
	}{
		{
			name:    "khop2-hubs",
			display: fmt.Sprintf(`MATCH (s:Node {uid: %d})-[:F*1..2]->(n) RETURN count(n)`, hubs[0]),
			queries: func() []string {
				qs := make([]string, len(hubs))
				for i, h := range hubs {
					qs[i] = fmt.Sprintf(`MATCH (s:Node {uid: %d})-[:F*1..2]->(n) RETURN count(n)`, h)
				}
				return qs
			}(),
		},
		{
			name: "filter-agg",
			display: fmt.Sprintf(
				`MATCH (a:Node)-[:F]->(b:Node) WHERE a.uid < %d RETURN min(b.uid), max(b.uid), count(b)`, n/2),
			queries: []string{fmt.Sprintf(
				`MATCH (a:Node)-[:F]->(b:Node) WHERE a.uid < %d RETURN min(b.uid), max(b.uid), count(b)`, n/2)},
		},
		{
			name:    "order-limit",
			display: `MATCH (a:Node)-[:F]->(b:Node) RETURN a.uid, b.uid ORDER BY a.uid, b.uid LIMIT 100`,
			queries: []string{`MATCH (a:Node)-[:F]->(b:Node) RETURN a.uid, b.uid ORDER BY a.uid, b.uid LIMIT 100`},
		},
	}
	threadCounts := []int{1, 2, 4, 8}
	var out []ParallelScalingResult
	for _, wl := range workloads {
		once := func(th int) (float64, string) {
			runtime.GC()
			var rows []string
			t0 := time.Now()
			for _, q := range wl.queries {
				rs, err := core.ROQuery(g, q, nil, core.Config{OpThreads: th})
				if err != nil {
					panic(fmt.Sprintf("bench: parallel-scaling: %v", err))
				}
				for _, row := range rs.Rows {
					rows = append(rows, fmt.Sprint(row))
				}
			}
			el := time.Since(t0)
			sort.Strings(rows)
			return el.Seconds(), strings.Join(rows, ";")
		}
		// Interleave the thread counts so time-varying machine noise biases
		// none; keep the median of the post-warmup reps.
		reps := make(map[int][]float64, len(threadCounts))
		var ref string
		for rep := 0; rep < 6; rep++ {
			for _, th := range threadCounts {
				el, rows := once(th)
				if rep > 0 {
					reps[th] = append(reps[th], el)
				}
				if ref == "" {
					ref = rows
				} else if rows != ref {
					panic(fmt.Sprintf("bench: parallel-scaling disagreement on %s (threads=%d)", wl.name, th))
				}
			}
		}
		med := func(th int) float64 {
			xs := reps[th]
			sort.Float64s(xs)
			return xs[len(xs)/2]
		}
		base := med(1)
		for _, th := range threadCounts {
			el := med(th)
			r := ParallelScalingResult{
				Dataset: d.Name, Workload: wl.name, Query: wl.display,
				Queries: len(wl.queries), Threads: th, GoMaxProcs: maxprocs,
				QPS:     float64(len(wl.queries)) / el,
				MeanMS:  el * 1000 / float64(len(wl.queries)),
				Speedup: base / el,
			}
			out = append(out, r)
			fmt.Fprintf(s.w, "  %-14s %-12s threads=%d  %9.1f q/s  %8.2f ms/q  %5.2fx vs 1 thread\n",
				r.Dataset, r.Workload, r.Threads, r.QPS, r.MeanMS, r.Speedup)
		}
	}
	fmt.Fprintln(s.w)
	return out
}

// RWMixResult is one (ratio, client-count) cell of the mixed read/write
// throughput experiment: total queries/sec under delta-matrix concurrent
// execution versus the coarse-lock baseline (whole-query exclusive lock and
// a full matrix fold per write query).
type RWMixResult struct {
	Dataset         string  `json:"dataset"`
	Ratio           string  `json:"ratio"` // reader:writer query mix
	Clients         int     `json:"clients"`
	Ops             int     `json:"ops"`
	Writes          int     `json:"writes"`
	DeltaQPS        float64 `json:"delta_qps"`
	CoarseQPS       float64 `json:"coarse_qps"`
	SpeedupVsCoarse float64 `json:"speedup_vs_coarse"`
	// ScalingVsSingle is DeltaQPS relative to the same ratio's 1-client
	// delta run. On a multi-core host concurrent RO queries scale with the
	// reader count; on a single-core host this stays near 1.
	ScalingVsSingle float64 `json:"scaling_vs_single"`
}

// RWMix measures mixed read/write throughput on the first dataset at
// reader:writer query ratios 1:0, 9:1 and 1:1. Readers issue indexed 1-hop
// RO queries; writers alternate CREATE and DELETE of :W edges between
// indexed nodes. Each cell runs twice: delta-matrix concurrency (readers
// share the lock with write queries' read phases; deltas fold on threshold)
// and the coarse baseline (CoarseLock, full fold per write query).
func (s *Suite) RWMix(totalOps int) []RWMixResult {
	fmt.Fprintln(s.w, "=== E7: mixed read/write throughput (queries/sec) ===")
	d := s.Datasets[0]
	g := s.graphs[d.Name]
	seeds := gen.Seeds(d.Edges, 256, 77)

	readQ := func(seed int) {
		q := fmt.Sprintf(`MATCH (s:Node {uid: %d})-[:F]->(n) RETURN count(n)`, seed)
		if _, err := core.ROQuery(g, q, nil, core.Config{OpThreads: 1}); err != nil {
			panic(fmt.Sprintf("bench: rw-mix read: %v", err))
		}
	}
	// writeQ issues the i-th write query: alternating CREATE and DELETE of
	// :W edges so the graph stays near its steady-state size.
	writeQ := func(i int, cfg core.Config) {
		x := seeds[i%len(seeds)]
		y := seeds[(i*7+3)%len(seeds)]
		var q string
		if i%2 == 0 {
			q = fmt.Sprintf(`MATCH (a:Node {uid: %d}), (b:Node {uid: %d}) CREATE (a)-[:W]->(b)`, x, y)
		} else {
			q = fmt.Sprintf(`MATCH (a:Node {uid: %d})-[e:W]->(b) DELETE e`, x)
		}
		if _, err := core.Query(g, q, nil, cfg); err != nil {
			panic(fmt.Sprintf("bench: rw-mix write: %v", err))
		}
	}
	cleanup := func() {
		if _, err := core.Query(g, `MATCH (a)-[e:W]->(b) DELETE e`, nil, core.Config{OpThreads: 1}); err != nil {
			panic(fmt.Sprintf("bench: rw-mix cleanup: %v", err))
		}
		g.Lock()
		g.Sync()
		g.Unlock()
	}

	// run executes totalOps queries across the given client count; ops whose
	// global index hits the writeEvery stride are write queries.
	run := func(cfg core.Config, clients, writeEvery int) (qps float64, writes int) {
		per := totalOps / clients
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					global := c*per + i
					if writeEvery > 0 && global%writeEvery == writeEvery-1 {
						writeQ(global/writeEvery, cfg)
					} else {
						readQ(seeds[global%len(seeds)])
					}
				}
			}(c)
		}
		wg.Wait()
		el := time.Since(t0)
		total := per * clients
		if writeEvery > 0 {
			writes = total / writeEvery
		}
		return float64(total) / el.Seconds(), writes
	}

	ratios := []struct {
		name       string
		writeEvery int
	}{{"1:0", 0}, {"9:1", 10}, {"1:1", 2}}
	// Each cell runs twice and keeps the better rep (rep 0 warms caches and
	// absorbs GC debt from the previous cell).
	best := func(cfg core.Config, clients, writeEvery int) (float64, int) {
		var qps float64
		var writes int
		for rep := 0; rep < 2; rep++ {
			runtime.GC()
			q, w := run(cfg, clients, writeEvery)
			cleanup()
			if q > qps {
				qps, writes = q, w
			}
		}
		return qps, writes
	}

	var out []RWMixResult
	for _, ratio := range ratios {
		var single float64
		for _, clients := range []int{1, 2, 4} {
			deltaQPS, writes := best(core.Config{OpThreads: 1}, clients, ratio.writeEvery)
			coarseQPS, _ := best(core.Config{OpThreads: 1, CoarseLock: true}, clients, ratio.writeEvery)
			if clients == 1 {
				single = deltaQPS
			}
			r := RWMixResult{
				Dataset: d.Name, Ratio: ratio.name, Clients: clients,
				Ops: totalOps / clients * clients, Writes: writes,
				DeltaQPS: deltaQPS, CoarseQPS: coarseQPS,
				SpeedupVsCoarse: deltaQPS / coarseQPS,
				ScalingVsSingle: deltaQPS / single,
			}
			out = append(out, r)
			fmt.Fprintf(s.w, "  %-14s ratio=%-4s clients=%d  delta %9.0f q/s  coarse %9.0f q/s  %5.2fx vs coarse  %4.2fx vs 1 client\n",
				r.Dataset, r.Ratio, r.Clients, r.DeltaQPS, r.CoarseQPS, r.SpeedupVsCoarse, r.ScalingVsSingle)
		}
	}
	fmt.Fprintln(s.w)
	return out
}

// logBar renders a log-scale bar for the Fig. 1 chart.
func logBar(v, maxV float64) string {
	if v <= 0 || maxV <= 0 {
		return ""
	}
	// 40 chars spanning 5 decades below maxV.
	frac := 1 + (math.Log10(v)-math.Log10(maxV))/5
	if frac < 0.02 {
		frac = 0.02
	}
	n := int(frac * 40)
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// PlanCacheResult is one workload cell of the plan-cache experiment (E12):
// a hot/cold query-shape mix executed with the parameterized plan cache on
// vs off (the GRAPH.CONFIG SET PLAN_CACHE_SIZE 0 baseline). Results are
// checked bit-identical between the two paths on every query.
type PlanCacheResult struct {
	Workload      string  `json:"workload"`
	Batch         int     `json:"batch"`
	Queries       int     `json:"queries"`
	UncachedQPS   float64 `json:"uncached_qps"`
	CachedQPS     float64 `json:"cached_qps"`
	Speedup       float64 `json:"speedup"` // cached_qps / uncached_qps
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	Revalidations uint64  `json:"revalidations"`
	CacheBytes    int64   `json:"plan_cache_bytes"`
}

// planCacheGraph builds the experiment fixture: n indexed :Node vertices
// with 4 deterministic :F successors each, so the hot shapes (index seed +
// short traversal) execute in microseconds and per-request parse+plan is
// the dominant cost — the regime the cache targets.
func planCacheGraph(n int) *graph.Graph {
	g := graph.New("plan-cache")
	g.Lock()
	ids := make([]uint64, n)
	for i := 0; i < n; i++ {
		ids[i] = g.CreateNode([]string{"Node"}, map[string]value.Value{
			"uid": value.NewInt(int64(i)),
		}).ID
	}
	for i, id := range ids {
		for k := 0; k < 4; k++ {
			if _, err := g.CreateEdge("F", id, ids[(i*2654435761+k*40503+1)%n], nil); err != nil {
				panic(fmt.Sprintf("bench: plan-cache: %v", err))
			}
		}
	}
	g.CreateIndex("Node", "uid")
	g.Sync()
	g.Unlock()
	return g
}

// planCacheHotShapes are the parameterized templates of the hot mix; only
// the $seed binding varies between requests. All four are point-read /
// neighbourhood-count shapes whose execution completes in microseconds,
// so per-request parse+plan dominates — the production regime the cache
// targets. Materializing traversals spend O(graph) extracting result
// frontiers, which the cache cannot and should not hide; the write mix
// below covers that modest-gain end.
var planCacheHotShapes = []string{
	`MATCH (s:Node {uid: $seed})-[:F]->(n) RETURN count(n)`,
	`MATCH (s:Node {uid: $seed})-[:F]->(n) WHERE n.uid > $seed RETURN count(n)`,
	`MATCH (s:Node) WHERE s.uid = $seed RETURN s.uid`,
	`MATCH (s:Node {uid: $seed}) RETURN s.uid, s.uid + 1, s.uid * 2`,
}

// PlanCache reproduces the parse/plan-amortization experiment: a 90/10
// hot/cold shape mix at pipeline batch sizes 1 and 64, plus a write-heavy
// mix demonstrating that epoch churn revalidates cached templates instead
// of thrashing them. Cached and uncached paths must agree on every row.
func (s *Suite) PlanCache(queries int) []PlanCacheResult {
	fmt.Fprintf(s.w, "=== E12: parameterized plan cache, hot/cold shape mix (scale=%d) ===\n", s.scale)
	n := 1 << s.scale
	g := planCacheGraph(n)

	// runMix drives one deterministic request stream and returns elapsed
	// time plus the canonical rows of every request (the differential).
	// writeEvery > 0 inserts a connectivity write every writeEvery requests.
	runMix := func(g *graph.Graph, cfg core.Config, queries, writeEvery int) (time.Duration, []string) {
		rows := make([]string, 0, queries)
		canon := func(rs *core.ResultSet) string {
			out := make([]string, len(rs.Rows))
			for i, row := range rs.Rows {
				out[i] = fmt.Sprint(row)
			}
			sort.Strings(out)
			return strings.Join(out, ";")
		}
		wuid := n
		t0 := time.Now()
		for i := 0; i < queries; i++ {
			seed := int64((i * 2654435761) % n)
			params := map[string]value.Value{"seed": value.NewInt(seed)}
			var q string
			switch {
			case writeEvery > 0 && i%writeEvery == writeEvery-1:
				// Connectivity write: a fresh node wired to an existing one
				// (epoch bump; stats drift slowly).
				q = fmt.Sprintf(`MATCH (a:Node {uid: %d}) CREATE (a)-[:F]->(:Node {uid: %d})`, seed, wuid)
				wuid++
			case i%10 == 9:
				// Cold shape: the literal is baked into the text, so every
				// request is a new cache key.
				q = fmt.Sprintf(`MATCH (s:Node {uid: %d})-[:F]->(n) WHERE n.uid < %d RETURN count(n)`, seed, 10*n+i)
			default:
				q = planCacheHotShapes[i%len(planCacheHotShapes)]
			}
			rs, err := core.Query(g, q, params, cfg)
			if err != nil {
				panic(fmt.Sprintf("bench: plan-cache: %s: %v", q, err))
			}
			rows = append(rows, canon(rs))
		}
		return time.Since(t0), rows
	}

	var out []PlanCacheResult
	cell := func(workload string, batch, queries, writeEvery int) {
		// The write mix mutates its graph, so each run gets a fresh build;
		// read mixes share the static fixture.
		graphFor := func() *graph.Graph {
			if writeEvery > 0 {
				return planCacheGraph(n)
			}
			return g
		}
		var unReps, caReps []float64
		var counters core.PlanCacheCounters
		for rep := 0; rep < 6; rep++ {
			runtime.GC()
			elU, rowsU := runMix(graphFor(), core.Config{TraverseBatch: batch}, queries, writeEvery)
			runtime.GC()
			pc := core.NewPlanCache(core.DefaultPlanCacheSize)
			elC, rowsC := runMix(graphFor(), core.Config{TraverseBatch: batch, PlanCache: pc}, queries, writeEvery)
			for i := range rowsU {
				if rowsU[i] != rowsC[i] {
					panic(fmt.Sprintf("bench: plan-cache divergence %s req %d:\ncached:   %s\nuncached: %s",
						workload, i, rowsC[i], rowsU[i]))
				}
			}
			if rep == 0 {
				continue
			}
			unReps = append(unReps, float64(queries)/elU.Seconds())
			caReps = append(caReps, float64(queries)/elC.Seconds())
			counters = pc.Counters()
		}
		sort.Float64s(unReps)
		sort.Float64s(caReps)
		r := PlanCacheResult{
			Workload: workload, Batch: batch, Queries: queries,
			UncachedQPS: unReps[len(unReps)/2], CachedQPS: caReps[len(caReps)/2],
			Hits: counters.Hits, Misses: counters.Misses, Evictions: counters.Evictions,
			Invalidations: counters.Invalidations, Revalidations: counters.Revalidations,
			CacheBytes: counters.Bytes,
		}
		r.Speedup = r.CachedQPS / r.UncachedQPS
		out = append(out, r)
		fmt.Fprintf(s.w, "  %-10s batch %-3d  uncached %9.0f q/s  cached %9.0f q/s  %5.2fx  (hits %d misses %d reval %d inval %d)\n",
			r.Workload, r.Batch, r.UncachedQPS, r.CachedQPS, r.Speedup,
			r.Hits, r.Misses, r.Revalidations, r.Invalidations)
	}

	cell("hot-mix", 1, queries, 0)
	cell("hot-mix", 64, queries, 0)
	cell("write-mix", 64, queries/2, 5)
	fmt.Fprintln(s.w)
	return out
}

// ConcurrentLoadResult is one client-count cell of the inter-query
// concurrency experiment (E14): queries/sec and tail latency of a 90/10
// read/write mix under the fair multi-tenant morsel scheduler versus the
// FAIR_SCHEDULER 0 baseline (untagged pool, full requested parallelism per
// query regardless of the active-query count). Read rows are compared for
// equality between the two schedulers on every run.
type ConcurrentLoadResult struct {
	Dataset   string  `json:"dataset"`
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"`
	Writes    int     `json:"writes"`
	FairQPS   float64 `json:"fair_qps"`
	FairP50MS float64 `json:"fair_p50_ms"`
	FairP99MS float64 `json:"fair_p99_ms"`
	BaseQPS   float64 `json:"baseline_qps"`
	BaseP50MS float64 `json:"baseline_p50_ms"`
	BaseP99MS float64 `json:"baseline_p99_ms"`
	// QPSRatio and P99Ratio compare fair against the baseline (>1 means the
	// fair scheduler is higher-throughput / longer-tailed respectively).
	QPSRatio  float64 `json:"qps_ratio_fair_vs_baseline"`
	P99Ratio  float64 `json:"p99_ratio_fair_vs_baseline"`
	RowsEqual bool    `json:"rows_equal"`
}

// ConcurrentLoad measures inter-query scheduling on the first dataset: at
// each client count, every client issues parallel-eligible 2-hop count
// reads with a 10% write stride (the RWMix create/delete pattern), once
// under the fair scheduler (per-query morsel tagging + elastic thread
// budget) and once with NoFairScheduler restoring the pre-admission-control
// behavior. Each cell runs twice per scheduler and keeps the
// higher-throughput rep; reads record their counts so the two schedulers'
// rows can be compared for equality.
func (s *Suite) ConcurrentLoad(totalOps int) []ConcurrentLoadResult {
	fmt.Fprintln(s.w, "=== E14: concurrent-load — fair scheduler vs baseline (90/10 read/write) ===")
	d := s.Datasets[0]
	g := s.graphs[d.Name]
	seeds := gen.Seeds(d.Edges, 256, 55)
	const writeEvery = 10
	// Reads request more threads than the budget / active-query ratio
	// grants under load, so the elastic clamp has something to clamp.
	reqThreads := pool.Parallelism()

	readQ := func(seed int, cfg core.Config) int64 {
		q := fmt.Sprintf(`MATCH (s:Node {uid: %d})-[:F]->(n)-[:F]->(m) RETURN count(m)`, seed)
		rs, err := core.ROQuery(g, q, nil, cfg)
		if err != nil {
			panic(fmt.Sprintf("bench: concurrent-load read: %v", err))
		}
		return rs.Rows[0][0].Int()
	}
	writeQ := func(i int, cfg core.Config) {
		x := seeds[i%len(seeds)]
		y := seeds[(i*7+3)%len(seeds)]
		var q string
		if i%2 == 0 {
			q = fmt.Sprintf(`MATCH (a:Node {uid: %d}), (b:Node {uid: %d}) CREATE (a)-[:W]->(b)`, x, y)
		} else {
			q = fmt.Sprintf(`MATCH (a:Node {uid: %d})-[e:W]->(b) DELETE e`, x)
		}
		if _, err := core.Query(g, q, nil, cfg); err != nil {
			panic(fmt.Sprintf("bench: concurrent-load write: %v", err))
		}
	}
	cleanup := func() {
		if _, err := core.Query(g, `MATCH (a)-[e:W]->(b) DELETE e`, nil, core.Config{OpThreads: 1}); err != nil {
			panic(fmt.Sprintf("bench: concurrent-load cleanup: %v", err))
		}
		g.Lock()
		g.Sync()
		g.Unlock()
	}

	// run executes one cell: per-op latencies for the percentile figures and
	// per-op read counts for the cross-scheduler row comparison.
	run := func(clients int, fair bool) (qps float64, lat []float64, rows []int64, writes int) {
		per := totalOps / clients
		if per == 0 {
			per = 1
		}
		total := per * clients
		cfg := core.Config{OpThreads: reqThreads, NoFairScheduler: !fair}
		lat = make([]float64, total)
		rows = make([]int64, total)
		var wg sync.WaitGroup
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					global := c*per + i
					q0 := time.Now()
					if global%writeEvery == writeEvery-1 {
						writeQ(global/writeEvery, cfg)
						rows[global] = -1
					} else {
						rows[global] = readQ(seeds[global%len(seeds)], cfg)
					}
					lat[global] = float64(time.Since(q0).Nanoseconds()) / 1e6
				}
			}(c)
		}
		wg.Wait()
		el := time.Since(t0)
		return float64(total) / el.Seconds(), lat, rows, total / writeEvery
	}
	pct := func(lat []float64, q float64) float64 {
		sort.Float64s(lat)
		i := int(q * float64(len(lat)))
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	// cell measures one client count: seven reps per scheduler, the two
	// schedulers interleaved rep by rep so slow environmental drift (CPU
	// contention from neighbors, thermal state) lands on both sides of the
	// comparison instead of one block. Throughput is the best rep (rep 0
	// absorbs the cold caches and GC debt left by dataset loading); the
	// latency percentiles are computed over all reps' pooled samples — on a
	// small host, GC cycles land on arbitrary reps, so a single rep's tail
	// measures that lottery while the pooled tail converges on what each
	// scheduler sustains. Read rows are identical across reps (reads never
	// touch the :W edges the writes mutate), so the cross-scheduler row
	// comparison uses the last rep's.
	type cellStats struct {
		qps    float64
		pooled []float64
		rows   []int64
		writes int
	}
	cell := func(clients int) (fair, base cellStats) {
		for rep := 0; rep < 7; rep++ {
			for _, m := range []*cellStats{&fair, &base} {
				runtime.GC()
				q, l, r, w := run(clients, m == &fair)
				cleanup()
				m.qps = math.Max(m.qps, q)
				m.pooled = append(m.pooled, l...)
				m.rows, m.writes = r, w
			}
		}
		return fair, base
	}

	var out []ConcurrentLoadResult
	for _, clients := range []int{1, 4, 16, 64} {
		fair, base := cell(clients)
		fairQPS, fairP50, fairP99 := fair.qps, pct(fair.pooled, 0.50), pct(fair.pooled, 0.99)
		baseQPS, baseP50, baseP99 := base.qps, pct(base.pooled, 0.50), pct(base.pooled, 0.99)
		fairRows, baseRows, writes := fair.rows, base.rows, fair.writes
		equal := len(fairRows) == len(baseRows)
		for i := 0; equal && i < len(fairRows); i++ {
			equal = fairRows[i] == baseRows[i]
		}
		r := ConcurrentLoadResult{
			Dataset: d.Name, Clients: clients, Ops: len(fairRows), Writes: writes,
			FairQPS: fairQPS, FairP50MS: fairP50, FairP99MS: fairP99,
			BaseQPS: baseQPS, BaseP50MS: baseP50, BaseP99MS: baseP99,
			QPSRatio: fairQPS / baseQPS, RowsEqual: equal,
		}
		r.P99Ratio = r.FairP99MS / r.BaseP99MS
		out = append(out, r)
		fmt.Fprintf(s.w, "  %-14s clients=%-3d fair %8.0f q/s p50 %7.2f p99 %7.2f ms | base %8.0f q/s p50 %7.2f p99 %7.2f ms | qps %4.2fx p99 %4.2fx rows-equal=%v\n",
			r.Dataset, r.Clients, r.FairQPS, r.FairP50MS, r.FairP99MS,
			r.BaseQPS, r.BaseP50MS, r.BaseP99MS, r.QPSRatio, r.P99Ratio, r.RowsEqual)
		if !equal {
			panic("bench: concurrent-load: fair and baseline schedulers returned different rows")
		}
	}
	fmt.Fprintln(s.w)
	return out
}

// PropStoreResult is one workload cell of the columnar property-store
// experiment (E15): a property-read-dominated query stream executed with
// PROPERTY_STORE columnar vs the map baseline. Rows are checked
// bit-identical between the two stores on every request.
type PropStoreResult struct {
	Workload    string  `json:"workload"`
	Queries     int     `json:"queries"`
	MapQPS      float64 `json:"map_qps"`
	ColumnarQPS float64 `json:"columnar_qps"`
	Speedup     float64 `json:"speedup"` // columnar_qps / map_qps
	RowsEqual   bool    `json:"rows_equal"`
}

// propStoreGraph builds the experiment fixture: n :P nodes carrying an int
// column (age), a float column (score), a modest-cardinality string column
// (name) and an indexed int key (uid), plus 2 deterministic :E successors
// per node so traversal masks have work. One node in 64 carries a
// mixed-type attribute to keep the overflow path honest.
func propStoreGraph(n int) *graph.Graph {
	g := graph.New("prop-store")
	g.Lock()
	ids := make([]uint64, n)
	for i := 0; i < n; i++ {
		p := map[string]value.Value{
			"uid":   value.NewInt(int64(i)),
			"age":   value.NewInt(int64((i * 2654435761) % 97)),
			"score": value.NewFloat(float64((i*40503)%1000) / 10),
			"name":  value.NewString(fmt.Sprintf("name-%d", i%23)),
		}
		// Dirty rows arrive after the first clean one so the column promotes
		// to its majority type (int) and only the 1-in-64 strings overflow —
		// a dirty first write would pin the whole column to the minority
		// kind, which is the realistic-worst-case we measure separately.
		if i%64 == 63 {
			p["age"] = value.NewString("unknown")
		}
		ids[i] = g.CreateNode([]string{"P"}, p).ID
	}
	for i, id := range ids {
		for k := 0; k < 2; k++ {
			if _, err := g.CreateEdge("E", id, ids[(i*2654435761+k*40503+1)%n], nil); err != nil {
				panic(fmt.Sprintf("bench: prop-store: %v", err))
			}
		}
	}
	g.CreateIndex("P", "uid")
	g.Sync()
	g.Unlock()
	return g
}

// PropStore measures the vectorized filter kernels: each workload runs the
// same deterministic request stream under both store modes, compares every
// row, and reports median queries/sec of 5 timed reps (one warm-up).
func (s *Suite) PropStore(queries int) []PropStoreResult {
	fmt.Fprintf(s.w, "=== E15: columnar property store vs map baseline (scale=%d) ===\n", s.scale)
	n := 1 << s.scale
	g := propStoreGraph(n)

	// Scan-dominated workloads touch every row per query, so they get a
	// smaller request count than the point-read shapes.
	scanQ := queries / 8
	if scanQ < 16 {
		scanQ = 16
	}

	type workload struct {
		name    string
		queries int
		mutates bool
		request func(i int) (string, map[string]value.Value)
	}
	workloads := []workload{
		// Selective numeric filter: few survivors, so the per-row predicate
		// (not record emission) dominates — the regime the kernels target.
		// filter-agg below keeps a ~50%-selectivity cell where emission
		// shares the bill.
		{name: "filter-count", queries: scanQ, request: func(i int) (string, map[string]value.Value) {
			return `MATCH (p:P) WHERE p.age > $t RETURN count(p)`,
				map[string]value.Value{"t": value.NewInt(int64(80 + i%17))}
		}},
		{name: "filter-agg", queries: scanQ, request: func(i int) (string, map[string]value.Value) {
			return `MATCH (p:P) WHERE p.score >= $t AND p.age < 90 RETURN count(p), min(p.score), max(p.age)`,
				map[string]value.Value{"t": value.NewFloat(float64(i % 100))}
		}},
		{name: "string-eq", queries: scanQ, request: func(i int) (string, map[string]value.Value) {
			return fmt.Sprintf(`MATCH (p:P) WHERE p.name = "name-%d" RETURN count(p)`, i%23), nil
		}},
		{name: "projection", queries: scanQ, request: func(i int) (string, map[string]value.Value) {
			return `MATCH (p:P) WHERE p.age >= $t RETURN p.uid, p.name, p.score`,
				map[string]value.Value{"t": value.NewInt(int64(90 + i%7))}
		}},
		{name: "indexed-eq", queries: queries, request: func(i int) (string, map[string]value.Value) {
			return `MATCH (p:P {uid: $seed}) WHERE p.age >= 0 RETURN p.uid, p.age`,
				map[string]value.Value{"seed": value.NewInt(int64((i * 2654435761) % n))}
		}},
		{name: "write-mix", queries: scanQ, mutates: true, request: func(i int) (string, map[string]value.Value) {
			if i%4 == 3 {
				return `MATCH (p:P {uid: $seed}) SET p.age = $t`,
					map[string]value.Value{
						"seed": value.NewInt(int64((i * 40503) % n)),
						"t":    value.NewInt(int64(i % 97)),
					}
			}
			return `MATCH (p:P) WHERE p.age > $t RETURN count(p)`,
				map[string]value.Value{"t": value.NewInt(int64(i % 97))}
		}},
	}

	runStream := func(g *graph.Graph, cfg core.Config, w workload) (time.Duration, []string) {
		rows := make([]string, 0, w.queries)
		t0 := time.Now()
		for i := 0; i < w.queries; i++ {
			q, params := w.request(i)
			rs, err := core.Query(g, q, params, cfg)
			if err != nil {
				panic(fmt.Sprintf("bench: prop-store: %s: %v", q, err))
			}
			out := make([]string, len(rs.Rows))
			for j, row := range rs.Rows {
				out[j] = fmt.Sprint(row)
			}
			sort.Strings(out)
			rows = append(rows, strings.Join(out, ";"))
		}
		return time.Since(t0), rows
	}

	var out []PropStoreResult
	for _, w := range workloads {
		graphFor := func() *graph.Graph {
			if w.mutates {
				return propStoreGraph(n)
			}
			return g
		}
		var mapReps, colReps []float64
		for rep := 0; rep < 6; rep++ {
			runtime.GC()
			elM, rowsM := runStream(graphFor(), core.Config{PropertyStore: "map"}, w)
			runtime.GC()
			elC, rowsC := runStream(graphFor(), core.Config{PropertyStore: "columnar"}, w)
			for i := range rowsM {
				if rowsM[i] != rowsC[i] {
					panic(fmt.Sprintf("bench: prop-store divergence %s req %d:\nmap:      %s\ncolumnar: %s",
						w.name, i, rowsM[i], rowsC[i]))
				}
			}
			if rep == 0 {
				continue // warm-up
			}
			mapReps = append(mapReps, float64(w.queries)/elM.Seconds())
			colReps = append(colReps, float64(w.queries)/elC.Seconds())
		}
		sort.Float64s(mapReps)
		sort.Float64s(colReps)
		r := PropStoreResult{
			Workload: w.name, Queries: w.queries,
			MapQPS: mapReps[len(mapReps)/2], ColumnarQPS: colReps[len(colReps)/2],
			RowsEqual: true,
		}
		r.Speedup = r.ColumnarQPS / r.MapQPS
		out = append(out, r)
		fmt.Fprintf(s.w, "  %-12s  map %9.0f q/s  columnar %9.0f q/s  %5.2fx\n",
			r.Workload, r.MapQPS, r.ColumnarQPS, r.Speedup)
	}
	fmt.Fprintln(s.w)
	return out
}
