module redisgraph

go 1.22
