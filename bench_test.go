// bench_test.go regenerates the paper's evaluation artifacts as Go
// benchmarks — one per table/figure plus the design-choice ablations from
// DESIGN.md. Run everything with:
//
//	go test -bench . -benchmem
//
// Scales are small so the suite completes quickly; cmd/khop-bench runs the
// same experiments at configurable scale with full seed counts.
package redisgraph

import (
	"fmt"
	"runtime"
	"testing"

	"redisgraph/internal/algo"
	"redisgraph/internal/baseline"
	"redisgraph/internal/bench"
	"redisgraph/internal/gen"
	"redisgraph/internal/graph"
	"redisgraph/internal/grb"
)

const benchScale = 12

type fixture struct {
	name    string
	edges   *gen.EdgeList
	g       *graph.Graph
	engines []baseline.Engine
	seeds   []int
}

var fixtures map[string]*fixture

func getFixture(name string) *fixture {
	if fixtures == nil {
		fixtures = map[string]*fixture{}
	}
	if f, ok := fixtures[name]; ok {
		return f
	}
	var d bench.Dataset
	switch name {
	case "graph500":
		d = bench.Graph500Dataset(benchScale)
	case "twitter":
		d = bench.TwitterDataset(benchScale)
	default:
		panic("unknown fixture " + name)
	}
	f := &fixture{name: name, edges: d.Edges}
	f.g = bench.BuildGraph(d.Name, d.Edges)
	f.engines = bench.Systems(f.g, d.Edges)
	f.seeds = gen.Seeds(d.Edges, 64, 3)
	fixtures[name] = f
	return f
}

func (f *fixture) engine(name string) baseline.Engine {
	for _, e := range f.engines {
		if e.Name() == name {
			return e
		}
	}
	panic("unknown engine " + name)
}

// ---- E1 / Fig. 1: 1-hop average response time per system ----

func BenchmarkFig1(b *testing.B) {
	for _, ds := range []string{"graph500", "twitter"} {
		f := getFixture(ds)
		for _, sys := range []string{"RedisGraph", "TigerGraph*", "Neo4j*", "Neptune*", "JanusGraph*", "ArangoDB*"} {
			e := f.engine(sys)
			b.Run(fmt.Sprintf("%s/%s", ds, sys), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e.KHopCount(f.seeds[i%len(f.seeds)], 1)
				}
			})
		}
	}
}

// ---- E2: k-hop table, k ∈ {1,2,3,6} ----

func BenchmarkKHop(b *testing.B) {
	for _, ds := range []string{"graph500", "twitter"} {
		f := getFixture(ds)
		for _, k := range []int{1, 2, 3, 6} {
			for _, sys := range []string{"RedisGraph", "TigerGraph*", "Neo4j*"} {
				e := f.engine(sys)
				b.Run(fmt.Sprintf("%s/k=%d/%s", ds, k, sys), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						e.KHopCount(f.seeds[i%len(f.seeds)], k)
					}
				})
			}
		}
	}
}

// ---- E3: concurrent-throughput architecture comparison ----

func BenchmarkThroughput(b *testing.B) {
	f := getFixture("graph500")
	rg := bench.NewRedisGraphEngine(f.g, 1)
	b.Run("RedisGraphPool", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				rg.KHopCount(f.seeds[i%len(f.seeds)], 1)
				i++
			}
		})
	})
	tg := baseline.NewParallelAdjList(f.edges.NumNodes, f.edges.Src, f.edges.Dst, runtime.GOMAXPROCS(0))
	b.Run("TigerGraphAllCores", func(b *testing.B) {
		// All-cores engines serialise queries; no RunParallel.
		for i := 0; i < b.N; i++ {
			tg.KHopCount(f.seeds[i%len(f.seeds)], 1)
		}
	})
}

// ---- E4: 6-hop robustness ----

func BenchmarkRobust6Hop(b *testing.B) {
	f := getFixture("graph500")
	e := f.engine("RedisGraph")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.KHopCount(f.seeds[i%len(f.seeds)], 6)
	}
}

// ---- Ablations (DESIGN.md §5) ----

// AblationPendingDelta: SuiteSparse-style pending updates vs materialising
// after every insert.
func BenchmarkAblationPendingDelta(b *testing.B) {
	const n = 4096
	const edges = 16384
	el := gen.Uniform(n, edges, 11)
	b.Run("pending-delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := grb.NewMatrix(n, n)
			for k := range el.Src {
				_ = m.SetElement(el.Src[k], el.Dst[k], 1)
			}
			m.Wait()
		}
	})
	b.Run("wait-every-64-inserts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := grb.NewMatrix(n, n)
			for k := range el.Src {
				_ = m.SetElement(el.Src[k], el.Dst[k], 1)
				if k%64 == 63 {
					m.Wait() // forced materialisation mid-stream
				}
			}
			m.Wait()
		}
	})
}

// AblationMaskedTraversal: complement-masked BFS expansion vs unmasked
// expansion with explicit set difference.
func BenchmarkAblationMaskedTraversal(b *testing.B) {
	f := getFixture("graph500")
	adj := func() *grb.Matrix {
		m, err := grb.BoolMatrixFromEdges(f.edges.NumNodes, f.edges.NumNodes, f.edges.Src, f.edges.Dst)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}()
	b.Run("masked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := algo.KHopCount(adj, f.seeds[i%len(f.seeds)], 3, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmasked-diff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seed := f.seeds[i%len(f.seeds)]
			frontier := grb.NewVector(adj.NRows())
			_ = frontier.SetElement(seed, 1)
			reached := frontier.Dup()
			for hop := 0; hop < 3 && frontier.NVals() > 0; hop++ {
				next := grb.NewVector(adj.NRows())
				if err := grb.VxM(next, nil, nil, grb.AnyPair, frontier, adj, nil); err != nil {
					b.Fatal(err)
				}
				// Explicit difference: drop already-reached entries.
				pruned := grb.NewVector(adj.NRows())
				if err := grb.SelectVector(pruned, reached, nil, grb.ValueNE(0), next, grb.DescRSC); err != nil {
					b.Fatal(err)
				}
				_ = grb.EWiseAddVector(reached, nil, nil, grb.LOr, reached, pruned, nil)
				frontier = pruned
			}
		}
	})
}

// AblationOpThreads: single-core query kernels (RedisGraph's model) vs
// intra-op parallelism for one query.
func BenchmarkAblationOpThreads(b *testing.B) {
	f := getFixture("graph500")
	for _, th := range []int{1, 2, 4} {
		e := bench.NewRedisGraphEngine(f.g, th)
		b.Run(fmt.Sprintf("threads=%d", th), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.KHopCount(f.seeds[i%len(f.seeds)], 2)
			}
		})
	}
}

// AblationMxMMasked: masked vs unmasked triangle-counting matrix product.
func BenchmarkAblationMxMMasked(b *testing.B) {
	el := gen.RMAT(gen.Graph500Defaults(10, 5))
	a, err := grb.BoolMatrixFromEdges(el.NumNodes, el.NumNodes, el.Src, el.Dst)
	if err != nil {
		b.Fatal(err)
	}
	n := a.NRows()
	sym := grb.NewMatrix(n, n)
	_ = grb.EWiseAddMatrix(sym, nil, nil, grb.LOr, a, a, grb.DescT1)
	l := grb.NewMatrix(n, n)
	_ = grb.SelectMatrix(l, nil, nil, grb.Tril, sym, nil)
	b.Run("masked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := grb.NewMatrix(n, n)
			if err := grb.MxM(c, l, nil, grb.PlusPair, l, l, grb.DescS); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmasked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := grb.NewMatrix(n, n)
			if err := grb.MxM(c, nil, nil, grb.PlusPair, l, l, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGraphBLASKernels measures the raw kernels the traversals stand on.
func BenchmarkGraphBLASKernels(b *testing.B) {
	el := gen.RMAT(gen.Graph500Defaults(benchScale, 13))
	a, err := grb.BoolMatrixFromEdges(el.NumNodes, el.NumNodes, el.Src, el.Dst)
	if err != nil {
		b.Fatal(err)
	}
	n := a.NRows()
	b.Run("vxm-onehot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := grb.NewVector(n)
			_ = u.SetElement(i%n, 1)
			w := grb.NewVector(n)
			if err := grb.VxM(w, nil, nil, grb.AnyPair, u, a, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("transpose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := grb.NewMatrix(n, n)
			if err := grb.Transpose(c, nil, nil, a, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reduce-rows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := grb.NewVector(n)
			if err := grb.ReduceMatrixToVector(w, nil, nil, grb.PlusMonoid, a, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCypherPipeline isolates the non-kernel part of a query: parse,
// plan and execute a 1-hop count through the full stack.
func BenchmarkCypherPipeline(b *testing.B) {
	f := getFixture("graph500")
	e := f.engine("RedisGraph")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.KHopCount(f.seeds[i%len(f.seeds)], 1)
	}
}
