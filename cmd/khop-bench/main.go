// Command khop-bench regenerates every table and figure of the paper's
// evaluation at laptop scale:
//
//	khop-bench -scale 14 -experiment all
//
// Experiments: fig1 (E1), khop (E2 + E5 speedups), throughput (E3),
// robust (E4), traverse-batch (E6, the batched-frontier ablation), or all.
// -batch sets the frontier batch size for the traverse-batch experiment;
// -out writes its results as JSON (the perf-trajectory artifact).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"redisgraph/internal/bench"
)

func main() {
	scale := flag.Int("scale", 13, "graph scale: 2^scale vertices per dataset")
	experiment := flag.String("experiment", "all", "fig1 | khop | throughput | robust | traverse-batch | all")
	queries := flag.Int("queries", 2048, "query count for the throughput experiment")
	timeout := flag.Duration("timeout", 30*time.Second, "robustness experiment timeout per query")
	batch := flag.Int("batch", 64, "frontier batch size for the traverse-batch experiment")
	out := flag.String("out", "", "write traverse-batch results as JSON to this file")
	flag.Parse()

	fmt.Printf("khop-bench: reproducing 'RedisGraph GraphBLAS Enabled Graph Database' (IPDPSW'19)\n")
	fmt.Printf("scale=%d (paper: graph500 scale≈21, twitter 41.6M nodes; shapes, not absolutes)\n\n", *scale)

	s := bench.NewSuite(*scale, os.Stdout)
	want := func(name string) bool {
		return *experiment == "all" || strings.EqualFold(*experiment, name)
	}
	if want("fig1") {
		s.Fig1()
	}
	if want("khop") {
		s.KHopTable([]int{1, 2, 3, 6})
	}
	if want("throughput") {
		s.Throughput(*queries)
	}
	if want("robust") {
		s.Robustness(*timeout)
	}
	if want("traverse-batch") {
		results := s.TraverseBatch(*batch)
		if *out != "" {
			doc := struct {
				Experiment string                      `json:"experiment"`
				Scale      int                         `json:"scale"`
				Results    []bench.TraverseBatchResult `json:"results"`
			}{"traverse-batch", *scale, results}
			data, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *out)
		}
	}
}
