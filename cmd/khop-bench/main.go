// Command khop-bench regenerates every table and figure of the paper's
// evaluation at laptop scale:
//
//	khop-bench -scale 14 -experiment all
//
// Experiments: fig1 (E1), khop (E2 + E5 speedups), throughput (E3),
// robust (E4), or all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"redisgraph/internal/bench"
)

func main() {
	scale := flag.Int("scale", 13, "graph scale: 2^scale vertices per dataset")
	experiment := flag.String("experiment", "all", "fig1 | khop | throughput | robust | all")
	queries := flag.Int("queries", 2048, "query count for the throughput experiment")
	timeout := flag.Duration("timeout", 30*time.Second, "robustness experiment timeout per query")
	flag.Parse()

	fmt.Printf("khop-bench: reproducing 'RedisGraph GraphBLAS Enabled Graph Database' (IPDPSW'19)\n")
	fmt.Printf("scale=%d (paper: graph500 scale≈21, twitter 41.6M nodes; shapes, not absolutes)\n\n", *scale)

	s := bench.NewSuite(*scale, os.Stdout)
	want := func(name string) bool {
		return *experiment == "all" || strings.EqualFold(*experiment, name)
	}
	if want("fig1") {
		s.Fig1()
	}
	if want("khop") {
		s.KHopTable([]int{1, 2, 3, 6})
	}
	if want("throughput") {
		s.Throughput(*queries)
	}
	if want("robust") {
		s.Robustness(*timeout)
	}
}
