// Command khop-bench regenerates every table and figure of the paper's
// evaluation at laptop scale:
//
//	khop-bench -scale 14 -experiment all
//
// Experiments: fig1 (E1), khop (E2 + E5 speedups), throughput (E3),
// robust (E4), traverse-batch (E6, the batched-frontier ablation),
// rw-mix (E7, mixed read/write throughput under delta-matrix concurrency
// vs the coarse-lock baseline), pipeline-batch (E8, the end-to-end
// batch-at-a-time pipeline with predicate pushdown), plan-order (E9, the
// cost-based planner vs the textual-order baseline on order-sensitive
// queries), kernel-select (E10, direction-optimizing push/pull traversal
// kernels vs the forced single-direction baselines), plan-cache (E12, the
// parameterized plan cache vs the PLAN_CACHE_SIZE 0 re-plan baseline on a
// 90/10 hot/cold shape mix), join-order (E13, hash joins for WHERE-bridged
// components and the DP join-order search vs the greedy/rescan baseline),
// concurrent-load (E14, the fair multi-tenant morsel scheduler vs the
// FAIR_SCHEDULER 0 baseline on a 90/10 read/write mix at rising client
// counts), or all.
// -batch sets the batch size for the traverse-batch and pipeline-batch
// experiments; -out writes the selected experiment's results as JSON (the
// perf-trajectory artifacts BENCH_traverse.json / BENCH_rwmix.json /
// BENCH_pipeline.json / BENCH_planner.json / BENCH_plancache.json /
// BENCH_join.json / BENCH_concurrency.json), each stamped with a uniform
// host block (GOMAXPROCS, CPU count, Go version, race detector).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"redisgraph/internal/bench"
)

func main() {
	scale := flag.Int("scale", 13, "graph scale: 2^scale vertices per dataset")
	experiment := flag.String("experiment", "all", "fig1 | khop | throughput | robust | traverse-batch | rw-mix | pipeline-batch | plan-order | kernel-select | parallel-scaling | plan-cache | join-order | concurrent-load | prop-store | all")
	queries := flag.Int("queries", 2048, "query count for the throughput and rw-mix experiments")
	timeout := flag.Duration("timeout", 30*time.Second, "robustness experiment timeout per query")
	batch := flag.Int("batch", 64, "batch size for the traverse-batch and pipeline-batch experiments")
	out := flag.String("out", "", "write the selected experiment's results as JSON to this file")
	flag.Parse()

	fmt.Printf("khop-bench: reproducing 'RedisGraph GraphBLAS Enabled Graph Database' (IPDPSW'19)\n")
	fmt.Printf("scale=%d (paper: graph500 scale≈21, twitter 41.6M nodes; shapes, not absolutes)\n\n", *scale)

	s := bench.NewSuite(*scale, os.Stdout)
	want := func(name string) bool {
		return *experiment == "all" || strings.EqualFold(*experiment, name)
	}
	if want("fig1") {
		s.Fig1()
	}
	if want("khop") {
		s.KHopTable([]int{1, 2, 3, 6})
	}
	if want("throughput") {
		s.Throughput(*queries)
	}
	if want("robust") {
		s.Robustness(*timeout)
	}
	// outFor resolves the JSON artifact path for one experiment. With a
	// single experiment selected -out is used verbatim; with -experiment all
	// each JSON-producing experiment gets a derived name so they do not
	// clobber each other.
	outFor := func(name string) string {
		if *out == "" || strings.EqualFold(*experiment, name) {
			return *out
		}
		ext := filepath.Ext(*out)
		return strings.TrimSuffix(*out, ext) + "_" + name + ext
	}
	if want("traverse-batch") {
		results := s.TraverseBatch(*batch)
		writeJSON(outFor("traverse-batch"), "traverse-batch", *scale, results)
	}
	if want("rw-mix") {
		results := s.RWMix(*queries)
		writeJSON(outFor("rw-mix"), "rw-mix", *scale, results)
	}
	if want("pipeline-batch") {
		results := s.PipelineBatch(*batch)
		writeJSON(outFor("pipeline-batch"), "pipeline-batch", *scale, results)
	}
	if want("plan-order") {
		results := s.PlanOrder()
		writeJSON(outFor("plan-order"), "plan-order", *scale, results)
	}
	if want("kernel-select") {
		report := s.KernelSelect()
		writeJSON(outFor("kernel-select"), "kernel-select", *scale, report)
	}
	if want("parallel-scaling") {
		results := s.ParallelScaling()
		writeJSON(outFor("parallel-scaling"), "parallel-scaling", *scale, results)
	}
	if want("plan-cache") {
		results := s.PlanCache(*queries)
		writeJSON(outFor("plan-cache"), "plan-cache", *scale, results)
	}
	if want("join-order") {
		results := s.JoinOrder()
		writeJSON(outFor("join-order"), "join-order", *scale, results)
	}
	if want("concurrent-load") {
		results := s.ConcurrentLoad(*queries)
		writeJSON(outFor("concurrent-load"), "concurrent-load", *scale, results)
	}
	if want("prop-store") {
		results := s.PropStore(*queries)
		writeJSON(outFor("prop-store"), "prop-store", *scale, results)
	}
}

// writeJSON writes one experiment's results as the perf-trajectory
// artifact; a missing -out skips it.
func writeJSON(path, experiment string, scale int, results any) {
	if path == "" {
		return
	}
	doc := struct {
		Experiment string         `json:"experiment"`
		Scale      int            `json:"scale"`
		Host       bench.HostInfo `json:"host"`
		Results    any            `json:"results"`
	}{experiment, scale, bench.Host(), results}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}
