// Command redisgraph-cli is a minimal redis-cli equivalent: one-shot when
// given a command on the argv, interactive (REPL) otherwise.
//
//	redisgraph-cli -addr localhost:6379 GRAPH.QUERY g "MATCH (n) RETURN count(n)"
//	redisgraph-cli
//	127.0.0.1:6379> PING
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"redisgraph/internal/client"
	"redisgraph/internal/resp"
)

func main() {
	addr := flag.String("addr", "localhost:6379", "server address")
	flag.Parse()

	c, err := client.Dial(*addr)
	if err != nil {
		log.Fatalf("redisgraph-cli: %v", err)
	}
	defer c.Close()

	if args := flag.Args(); len(args) > 0 {
		v, err := c.Do(args...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "(error) %v\n", err)
			os.Exit(1)
		}
		printReply(v, 0)
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("%s> ", *addr)
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") || strings.EqualFold(line, "exit") {
			return
		}
		args := splitArgs(line)
		v, err := c.Do(args...)
		if err != nil {
			fmt.Printf("(error) %v\n", err)
			continue
		}
		printReply(v, 0)
	}
}

// splitArgs honours single/double quotes, like redis-cli.
func splitArgs(line string) []string {
	var out []string
	var cur strings.Builder
	quote := byte(0)
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else {
				cur.WriteByte(c)
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ' ':
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return out
}

func printReply(v any, depth int) {
	pad := strings.Repeat("  ", depth)
	switch v := v.(type) {
	case nil:
		fmt.Printf("%s(nil)\n", pad)
	case resp.SimpleString:
		fmt.Printf("%s%s\n", pad, string(v))
	case string:
		fmt.Printf("%s%q\n", pad, v)
	case int64:
		fmt.Printf("%s(integer) %d\n", pad, v)
	case []any:
		if len(v) == 0 {
			fmt.Printf("%s(empty array)\n", pad)
			return
		}
		for i, e := range v {
			fmt.Printf("%s%d)\n", pad, i+1)
			printReply(e, depth+1)
		}
	default:
		fmt.Printf("%s%v\n", pad, v)
	}
}
