// Command redisgraph-server runs the Redis-like server with the graph
// module loaded. Speak to it with cmd/redisgraph-cli or any RESP client:
//
//	redisgraph-server -addr :6379 -threads 8
//	redisgraph-cli GRAPH.QUERY social "CREATE (:Person {name: 'alice'})"
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"redisgraph/internal/server"
)

func main() {
	addr := flag.String("addr", ":6379", "listen address")
	threads := flag.Int("threads", 8, "module threadpool size (queries run one per worker)")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 = none)")
	batch := flag.Int("batch", 0, "pipeline batch size (0 = engine default; 1 = tuple-at-a-time)")
	kernel := flag.String("kernel", "auto", "traversal kernel direction: auto | push | pull")
	snapshot := flag.String("snapshot", "", "snapshot file: loaded at start, written by SAVE and at shutdown")
	flag.Parse()
	switch *kernel {
	case "auto", "push", "pull":
	default:
		log.Fatalf("redisgraph-server: -kernel must be auto, push or pull (got %q)", *kernel)
	}

	s := server.New(server.Options{
		Addr:           *addr,
		ThreadCount:    *threads,
		TraverseBatch:  *batch,
		TraverseKernel: *kernel,
		QueryTimeout:   *timeout,
		SnapshotPath:   *snapshot,
	})
	if err := s.Start(); err != nil {
		log.Fatalf("redisgraph-server: %v", err)
	}
	log.Printf("redisgraph-server listening on %s (threadpool=%d)", s.Addr(), *threads)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	if *snapshot != "" {
		if err := s.SaveSnapshot(); err != nil {
			log.Printf("snapshot on shutdown failed: %v", err)
		}
	}
	s.Close()
	time.Sleep(50 * time.Millisecond)
}
