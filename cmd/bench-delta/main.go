// bench-delta compares two benchmark JSON artifacts (the files khop-bench
// -out writes) and prints per-workload metric ratios as a markdown table:
//
//	bench-delta -old BENCH_propstore.json -new bench-artifacts/BENCH_prop-store.json
//
// Rows are matched by their identity fields (strings, bools, and the
// parameter-like integer fields such as batch/threads/clients); the
// throughput metrics (*qps*) and latency metrics (*_ms) of matched rows are
// reported as new/old ratios. For qps higher is better, for _ms lower is
// better. With -fail-below R the exit status is 1 if any matched qps ratio
// falls below R — the CI regression gate. Artifacts recorded at different
// scales or on different hosts are still matched (the scale difference is
// printed), so the speedup columns remain comparable even when absolute
// numbers are not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type artifact struct {
	Experiment string          `json:"experiment"`
	Scale      int             `json:"scale"`
	Results    json.RawMessage `json:"results"`
}

// keyFields are integer-valued fields that configure a row rather than
// measure it; they join the string/bool fields in the row identity key.
// Volume-type integers (queries, ops, rows, sources) are deliberately
// excluded — they scale with the run, and including them would prevent
// matching a small smoke run against a full-scale baseline.
var keyFields = map[string]bool{
	"batch": true, "threads": true, "clients": true,
	"gomaxprocs": true, "k": true,
}

func rows(raw json.RawMessage) []map[string]any {
	var list []map[string]any
	if err := json.Unmarshal(raw, &list); err == nil {
		return list
	}
	// Some experiments wrap their rows ({"results": [...], ...}).
	var wrapped struct {
		Results []map[string]any `json:"results"`
	}
	if err := json.Unmarshal(raw, &wrapped); err == nil {
		return wrapped.Results
	}
	return nil
}

func rowKey(r map[string]any) string {
	var parts []string
	for k, v := range r {
		switch vv := v.(type) {
		case string:
			parts = append(parts, fmt.Sprintf("%s=%s", k, vv))
		case bool:
			parts = append(parts, fmt.Sprintf("%s=%v", k, vv))
		case float64:
			if keyFields[k] {
				parts = append(parts, fmt.Sprintf("%s=%g", k, vv))
			}
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// isQPS marks higher-is-better rate metrics; speedup rides along in the
// table but never gates -fail-below — it is a ratio of two rates, and a
// run where both rates improve can still move it either way.
func isQPS(name string) bool   { return strings.Contains(name, "qps") || name == "speedup" }
func isMS(name string) bool    { return strings.HasSuffix(name, "_ms") }
func isGated(name string) bool { return strings.Contains(name, "qps") }

func load(path string) artifact {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-delta: %v\n", err)
		os.Exit(2)
	}
	var a artifact
	if err := json.Unmarshal(b, &a); err != nil {
		fmt.Fprintf(os.Stderr, "bench-delta: %s: %v\n", path, err)
		os.Exit(2)
	}
	return a
}

func main() {
	oldPath := flag.String("old", "", "committed baseline artifact")
	newPath := flag.String("new", "", "freshly measured artifact")
	failBelow := flag.Float64("fail-below", 0, "exit 1 if any qps ratio (new/old) falls below this")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: bench-delta -old OLD.json -new NEW.json [-fail-below 0.95]")
		os.Exit(2)
	}
	oldA, newA := load(*oldPath), load(*newPath)
	if oldA.Experiment != newA.Experiment {
		fmt.Fprintf(os.Stderr, "bench-delta: experiment mismatch: %q vs %q\n", oldA.Experiment, newA.Experiment)
		os.Exit(2)
	}
	fmt.Printf("### %s: %s (scale %d) vs %s (scale %d)\n\n",
		newA.Experiment, *newPath, newA.Scale, *oldPath, oldA.Scale)
	if oldA.Scale != newA.Scale {
		fmt.Printf("_scales differ: absolute q/s are not comparable, speedup columns are._\n\n")
	}

	oldRows := map[string]map[string]any{}
	for _, r := range rows(oldA.Results) {
		oldRows[rowKey(r)] = r
	}

	fmt.Println("| workload | metric | old | new | new/old |")
	fmt.Println("|---|---|---:|---:|---:|")
	worst, matched := 1e18, 0
	for _, nr := range rows(newA.Results) {
		key := rowKey(nr)
		or, ok := oldRows[key]
		if !ok {
			fmt.Printf("| %s | _no baseline row_ | | | |\n", key)
			continue
		}
		matched++
		names := make([]string, 0, len(nr))
		for name := range nr {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			nv, ok1 := nr[name].(float64)
			ov, ok2 := or[name].(float64)
			if !ok1 || !ok2 || keyFields[name] || (!isQPS(name) && !isMS(name)) || ov == 0 {
				continue
			}
			ratio := nv / ov
			if isGated(name) && ratio < worst {
				worst = ratio
			}
			fmt.Printf("| %s | %s | %.2f | %.2f | %.2fx |\n", key, name, ov, nv, ratio)
		}
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "bench-delta: no rows matched between the two artifacts")
		os.Exit(2)
	}
	if *failBelow > 0 && worst < *failBelow {
		fmt.Fprintf(os.Stderr, "bench-delta: worst qps ratio %.3f below threshold %.3f\n", worst, *failBelow)
		os.Exit(1)
	}
}
