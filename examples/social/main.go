// Social: a real-time recommendation engine — one of the use cases the
// paper's introduction motivates. Builds a follower graph and computes
// "people you may know" (friends-of-friends you don't already follow,
// ranked by mutual count). Run with: go run ./examples/social
package main

import (
	"fmt"
	"log"
	"math/rand"

	"redisgraph"
)

func main() {
	db := redisgraph.Open("social")
	rng := rand.New(rand.NewSource(1))

	// 200 users following a preferential mix of others.
	for i := 0; i < 200; i++ {
		db.MustQuery(fmt.Sprintf(`CREATE (:User {uid: %d, name: 'user%d'})`, i, i), nil)
	}
	db.MustQuery(`CREATE INDEX ON :User(uid)`, nil)
	for i := 0; i < 200; i++ {
		for f := 0; f < 8; f++ {
			j := rng.Intn(200)
			if j == i {
				continue
			}
			params, _ := redisgraph.Params("a", i, "b", j)
			db.MustQuery(`MATCH (a:User {uid: $a}), (b:User {uid: $b})
				CREATE (a)-[:FOLLOWS]->(b)`, params)
		}
	}
	fmt.Printf("social graph: %d users, %d follows\n\n", db.NodeCount(), db.EdgeCount())

	// People user 0 may know: followed by someone user 0 follows, not
	// already followed, ranked by the number of mutual connections.
	params, _ := redisgraph.Params("me", 0)
	rs, err := db.Query(`
		MATCH (me:User {uid: $me})-[:FOLLOWS]->(friend)-[:FOLLOWS]->(candidate)
		WHERE candidate.uid <> $me
		WITH candidate, count(friend) AS mutuals
		RETURN candidate.name, mutuals
		ORDER BY mutuals DESC, candidate.name
		LIMIT 5`, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("people user0 may know:")
	fmt.Println(rs)

	// Influencers: most-followed users.
	rs, err = db.Query(`
		MATCH (u:User)<-[:FOLLOWS]-(f)
		RETURN u.name, count(f) AS followers
		ORDER BY followers DESC LIMIT 3`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top influencers:")
	fmt.Println(rs)
}
