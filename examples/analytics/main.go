// Analytics: the paper's future-work direction — LDBC Graphalytics /
// GraphChallenge kernels executed directly on the graph's GraphBLAS
// matrices: BFS, PageRank, connected components, triangle counting.
// Run with: go run ./examples/analytics
package main

import (
	"fmt"
	"log"

	"redisgraph/internal/algo"
	"redisgraph/internal/bench"
	"redisgraph/internal/gen"
	"redisgraph/internal/grb"
)

func main() {
	// Generate a Graph500 RMAT graph and load it as a RedisGraph store.
	edges := gen.RMAT(gen.Graph500Defaults(10, 42))
	g := bench.BuildGraph("analytics", edges)

	g.RLock()
	// BFS levels from vertex 0, on the store's own adjacency matrix. The
	// store keeps delta matrices; Export yields the effective CSR (zero-copy
	// when no deltas are pending) for the algorithm kernels.
	adjCSR := g.Adjacency().Export()
	levels, err := algo.BFSLevels(adjCSR, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFS from node 0 reaches %d of %d nodes\n", levels.NVals(), edges.NumNodes)

	// k-hop neighbourhood counts (the benchmark kernel).
	for _, k := range []int{1, 2, 3, 6} {
		n, err := algo.KHopCount(adjCSR, 0, k, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-hop neighborhood of node 0: %d nodes\n", k, n)
	}
	g.RUnlock()

	// The remaining kernels run on a compact matrix built straight from the
	// edge list (the store pads its matrix dimension for growth, which would
	// count phantom rows as singleton components).
	adj, err := grb.BoolMatrixFromEdges(edges.NumNodes, edges.NumNodes, edges.Src, edges.Dst)
	if err != nil {
		log.Fatal(err)
	}

	// PageRank.
	ranks, iters, err := algo.PageRank(adj, 0.85, 1e-6, 100, nil)
	if err != nil {
		log.Fatal(err)
	}
	best, bestRank := 0, 0.0
	ranks.Iterate(func(i grb.Index, x float64) bool {
		if x > bestRank {
			best, bestRank = i, x
		}
		return true
	})
	fmt.Printf("PageRank converged in %d iterations; top node %d (%.5f)\n", iters, best, bestRank)

	// Connected components (undirected view).
	labels, ccIters, err := algo.ConnectedComponents(adj, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected components: %d (in %d propagation rounds)\n",
		algo.ComponentCount(labels), ccIters)

	// Triangle counting (GraphChallenge kernel).
	tri, err := algo.TriangleCount(adj, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d\n", tri)

	// Local clustering coefficient of the highest-degree node.
	lcc, err := algo.LocalClusteringCoefficient(adj, nil)
	if err != nil {
		log.Fatal(err)
	}
	if v, err := lcc.ExtractElement(best); err == nil {
		fmt.Printf("clustering coefficient of node %d: %.4f\n", best, v)
	}
}
