// Fraud: fraud-detection patterns over a payments graph — another use case
// from the paper's introduction. Detects (a) accounts sharing a card with a
// flagged account and (b) short payment cycles (money loops).
// Run with: go run ./examples/fraud
package main

import (
	"fmt"
	"log"

	"redisgraph"
)

func main() {
	db := redisgraph.Open("fraud")

	db.MustQuery(`CREATE
		(:Account {id: 'acc1', flagged: false}),
		(:Account {id: 'acc2', flagged: true}),
		(:Account {id: 'acc3', flagged: false}),
		(:Account {id: 'acc4', flagged: false}),
		(:Card {num: 'card9'}),
		(:Card {num: 'card7'})`, nil)

	pay := func(from, to string, amt int) {
		params, _ := redisgraph.Params("f", from, "t", to, "amt", amt)
		db.MustQuery(`MATCH (a:Account {id: $f}), (b:Account {id: $t})
			CREATE (a)-[:PAID {amount: $amt}]->(b)`, params)
	}
	use := func(acc, card string) {
		params, _ := redisgraph.Params("a", acc, "c", card)
		db.MustQuery(`MATCH (a:Account {id: $a}), (c:Card {num: $c})
			CREATE (a)-[:USES]->(c)`, params)
	}

	use("acc1", "card9")
	use("acc2", "card9") // acc2 is flagged; acc1 shares its card
	use("acc3", "card7")
	pay("acc1", "acc3", 900)
	pay("acc3", "acc4", 850)
	pay("acc4", "acc1", 800) // 3-cycle: acc1 → acc3 → acc4 → acc1

	// Guilt by association: accounts sharing a card with a flagged account.
	rs, err := db.Query(`
		MATCH (bad:Account {flagged: true})-[:USES]->(c:Card)<-[:USES]-(suspect:Account)
		WHERE suspect.flagged = false
		RETURN suspect.id, c.num`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accounts sharing instruments with flagged accounts:")
	fmt.Println(rs)

	// Payment cycles of length 3 (money loops back to the origin).
	rs, err = db.Query(`
		MATCH (a:Account)-[:PAID]->(b)-[:PAID]->(c), (c)-[:PAID]->(a)
		WHERE a.id < b.id AND a.id < c.id
		RETURN a.id, b.id, c.id`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("payment cycles (potential laundering loops):")
	fmt.Println(rs)

	// Everyone within two payment hops of the flagged account's card-mates.
	rs, err = db.Query(`
		MATCH (s:Account {id: 'acc1'})-[:PAID*1..2]->(reach:Account)
		RETURN count(reach) AS blast_radius`, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("blast radius of acc1 within 2 payment hops:")
	fmt.Println(rs)
}
