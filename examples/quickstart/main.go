// Quickstart: open an embedded graph, create data, query it, inspect the
// execution plan. Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"redisgraph"
)

func main() {
	db := redisgraph.Open("quickstart")

	// Create a small social graph.
	db.MustQuery(`CREATE
		(:Person {name: 'alice', age: 30}),
		(:Person {name: 'bob', age: 40}),
		(:Person {name: 'carol', age: 25})`, nil)
	db.MustQuery(`MATCH (a:Person {name:'alice'}), (b:Person {name:'bob'})
		CREATE (a)-[:KNOWS {since: 2015}]->(b)`, nil)
	db.MustQuery(`MATCH (b:Person {name:'bob'}), (c:Person {name:'carol'})
		CREATE (b)-[:KNOWS {since: 2021}]->(c)`, nil)

	fmt.Printf("graph has %d nodes and %d relationships\n\n", db.NodeCount(), db.EdgeCount())

	// A parameterised read query.
	params, err := redisgraph.Params("who", "alice")
	if err != nil {
		log.Fatal(err)
	}
	rs, err := db.Query(`MATCH (a:Person {name: $who})-[:KNOWS*1..2]->(n)
		RETURN n.name, n.age ORDER BY n.name`, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("friends-of-friends of alice:")
	fmt.Println(rs)

	// The execution plan shows the traversal compiled to linear algebra.
	plan, err := db.Explain(`MATCH (a:Person {name: $who})-[:KNOWS*1..2]->(n) RETURN count(n)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("execution plan:")
	for _, line := range plan {
		fmt.Println("  " + line)
	}
}
